//! The library's front door: a **`Problem` → `Plan` → `Solution`** query
//! pipeline with model-driven solver selection.
//!
//! The paper's central practical lesson (§5) is that *which* solver and
//! *which* block size win depends on the problem size, core count, and
//! memory — knowledge this workspace mechanizes in [`apsp_cluster`] and
//! [`crate::tuner`], but which the expert surfaces
//! ([`crate::ApspSolver`], [`crate::algebra::AlgebraSolver`], the MPI
//! baselines) leave for the caller to wield by hand. This module is the
//! single typed entry point that plans the execution instead:
//!
//! 1. [`Problem`] — a builder capturing the input graph (or matrix), the
//!    [`Workload`], directedness, whether witness paths are wanted, and
//!    resource hints;
//! 2. [`Plan`] — the planner's decision: solver, block size, kernel
//!    tier, and partitioner, chosen by wiring the closed-form tuner, the
//!    cluster model's feasibility verdicts, and per-solver
//!    [capability metadata](SolverCaps) into one pass, with a
//!    [`Plan::explain`] report of why;
//! 3. [`Solution`] — one result type over all workloads, with point
//!    queries ([`Solution::dist`], [`Solution::path`],
//!    [`Solution::reachable`], [`Solution::width`],
//!    [`Solution::k_nearest`], [`Solution::submatrix`]).
//!
//! The old `ApspSolver`/`SolverConfig` surface stays as the expert layer
//! the planner compiles down to ([`Plan::solver_config`]); a
//! plan-executed solve is **bit-exact** with the explicitly-configured
//! solver it selected.
//!
//! ```
//! use apsp_core::plan::{Problem, Workload};
//! use apsp_graph::generators;
//! use sparklet::{SparkConfig, SparkContext};
//!
//! let g = generators::grid(4, 4);
//! let ctx = SparkContext::new(SparkConfig::with_cores(2));
//! let sol = Problem::new(&g).with_paths().solve(&ctx).unwrap();
//! assert_eq!(sol.dist(0, 15), Some(6.0));
//! assert_eq!(sol.path(0, 15).unwrap().len(), 7);
//!
//! // The same front door runs the (max, min) and boolean workloads.
//! let widest = Problem::new(&g).workload(Workload::Widest).solve(&ctx).unwrap();
//! assert_eq!(widest.width(0, 15), Some(1.0));
//! ```

use crate::algebra::AlgebraSolver;
use crate::blocks::PartitionerChoice;
use crate::checkpoint::CheckpointSpec;
use crate::solver::{ApspError, ApspResult, ApspSolver, SolverConfig};
use crate::store::{self, ClosureStore, StoreContents, ValueSource};
use crate::tuner;
use apsp_blockmat::algebra::Elem;
use apsp_blockmat::kernels::{self, MinPlusKernel};
use apsp_blockmat::{
    BoolSemiring, BottleneckF64, ElemBlock, Matrix, PathAlgebra, Reachability as ReachAlgebra,
    TrackedReachability, TrackedWidest, Widest as WidestAlgebra, INF, NO_VIA,
};
use apsp_cluster::{
    project, ClusterSpec, KernelRates, PartitionerKind, Projection, SolverKind, SparkOverheads,
    Workload as ModelWorkload,
};
use apsp_graph::paths::{NodeId, ParentMatrix};
use apsp_graph::{DiGraph, Graph};

use crate::hierarchy::{HierarchicalClosure, HierarchyConfig};
use sparklet::{EstimateSize, MetricsSnapshot, SparkContext};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Workloads
// ---------------------------------------------------------------------------

/// Which all-pairs path problem to solve — the algebra the blocked
/// engine is instantiated with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Workload {
    /// Shortest-path lengths over *(min, +)* — the paper's APSP.
    #[default]
    ShortestPaths,
    /// Widest (bottleneck) paths over *(max, min)*: edge weights read as
    /// capacities.
    Widest,
    /// Boolean transitive closure over *(∨, ∧)*: reachability.
    Reachability,
}

impl Workload {
    /// Human-readable label used by [`Plan::explain`].
    pub fn label(self) -> &'static str {
        match self {
            Workload::ShortestPaths => "shortest-paths",
            Workload::Widest => "widest-paths",
            Workload::Reachability => "reachability",
        }
    }
}

// ---------------------------------------------------------------------------
// Solver identities and capability metadata
// ---------------------------------------------------------------------------

/// Identity of every solver the planner can schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolverId {
    /// [`crate::BlockedCollectBroadcast`] (Algorithm 4).
    BlockedCollectBroadcast,
    /// [`crate::BlockedInMemory`] (Algorithm 3).
    BlockedInMemory,
    /// [`crate::FloydWarshall2D`] (Algorithm 2).
    FloydWarshall2D,
    /// [`crate::RepeatedSquaring`] (Algorithm 1).
    RepeatedSquaring,
    /// [`crate::CartesianSquaring`].
    CartesianSquaring,
    /// [`crate::DistributedJohnson`].
    DistributedJohnson,
    /// [`crate::MpiFw2d`] (FW-2D-GbE baseline).
    MpiFw2d,
    /// [`crate::MpiDcApsp`] (DC-GbE baseline).
    MpiDc,
    /// [`crate::directed::DirectedBlockedCB`].
    DirectedBlockedCB,
    /// [`crate::directed::DirectedFloydWarshall2D`].
    DirectedFloydWarshall2D,
    /// [`crate::hierarchy::HierarchicalClosure`] — the sparse
    /// partition/local-solve/boundary-stitch path; distances and paths
    /// are served lazily per point query, never as an `n × n` matrix.
    SparseHierarchical,
}

/// What a solver can and cannot do — the static metadata the planner's
/// capability rules run on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SolverCaps {
    /// Which solver this record describes.
    pub id: SolverId,
    /// Human-readable name (matches the paper's tables where applicable).
    pub name: &'static str,
    /// Accepts asymmetric (directed) adjacency input.
    pub directed: bool,
    /// Accepts symmetric (undirected) adjacency input.
    pub undirected: bool,
    /// Honors witness-path tracking (`SolverConfig::with_paths`).
    pub paths: bool,
    /// Runs non-tropical path algebras (the generic
    /// [`AlgebraSolver`] engine behind [`Workload::Widest`] and
    /// [`Workload::Reachability`]).
    pub algebras: bool,
    /// The cluster-model solver this maps onto for feasibility and cost
    /// projections; `None` for solvers outside the paper's model.
    pub model: Option<SolverKind>,
}

impl SolverId {
    /// Every schedulable solver, in the planner's preference order.
    pub const ALL: [SolverId; 11] = [
        SolverId::BlockedCollectBroadcast,
        SolverId::BlockedInMemory,
        SolverId::FloydWarshall2D,
        SolverId::RepeatedSquaring,
        SolverId::CartesianSquaring,
        SolverId::DistributedJohnson,
        SolverId::MpiFw2d,
        SolverId::MpiDc,
        SolverId::DirectedBlockedCB,
        SolverId::DirectedFloydWarshall2D,
        SolverId::SparseHierarchical,
    ];

    /// The capability record for this solver.
    pub fn capabilities(self) -> SolverCaps {
        match self {
            SolverId::BlockedCollectBroadcast => SolverCaps {
                id: self,
                name: "Blocked Collect/Broadcast (Algorithm 4)",
                directed: false,
                undirected: true,
                paths: true,
                algebras: true,
                model: Some(SolverKind::BlockedCollectBroadcast),
            },
            SolverId::BlockedInMemory => SolverCaps {
                id: self,
                name: "Blocked In-Memory (Algorithm 3)",
                directed: false,
                undirected: true,
                paths: true,
                algebras: true,
                model: Some(SolverKind::BlockedInMemory),
            },
            SolverId::FloydWarshall2D => SolverCaps {
                id: self,
                name: "2D Floyd-Warshall (Algorithm 2)",
                directed: false,
                undirected: true,
                paths: true,
                algebras: true,
                model: Some(SolverKind::FloydWarshall2D),
            },
            SolverId::RepeatedSquaring => SolverCaps {
                id: self,
                name: "Repeated Squaring (Algorithm 1)",
                directed: false,
                undirected: true,
                paths: true,
                algebras: true,
                model: Some(SolverKind::RepeatedSquaring),
            },
            SolverId::CartesianSquaring => SolverCaps {
                id: self,
                name: "Cartesian Squaring",
                directed: false,
                undirected: true,
                paths: false,
                algebras: false,
                model: None,
            },
            SolverId::DistributedJohnson => SolverCaps {
                id: self,
                name: "Distributed Johnson",
                directed: false,
                undirected: true,
                paths: false,
                algebras: false,
                model: None,
            },
            SolverId::MpiFw2d => SolverCaps {
                id: self,
                name: "FW-2D-GbE (MPI baseline)",
                directed: true,
                undirected: true,
                paths: true,
                algebras: false,
                model: Some(SolverKind::MpiFw2d),
            },
            SolverId::MpiDc => SolverCaps {
                id: self,
                name: "DC-GbE (MPI baseline)",
                directed: true,
                undirected: true,
                paths: true,
                algebras: false,
                model: Some(SolverKind::MpiDc),
            },
            SolverId::DirectedBlockedCB => SolverCaps {
                id: self,
                name: "Directed Blocked-CB",
                directed: true,
                undirected: true,
                paths: false, // staged cross pieces lack per-orientation parents
                algebras: false,
                model: Some(SolverKind::BlockedCollectBroadcast),
            },
            SolverId::DirectedFloydWarshall2D => SolverCaps {
                id: self,
                name: "Directed 2D Floyd-Warshall",
                directed: true,
                undirected: true,
                paths: true,
                algebras: false,
                model: Some(SolverKind::FloydWarshall2D),
            },
            SolverId::SparseHierarchical => SolverCaps {
                id: self,
                name: "Sparse Hierarchical (partition + boundary stitch)",
                directed: false,
                undirected: true,
                paths: true,
                algebras: false, // tropical-only: the stitch rule is (min, +)
                model: None,     // outside the paper's dense cluster model
            },
        }
    }

    /// Human-readable solver name.
    pub fn name(self) -> &'static str {
        self.capabilities().name
    }
}

/// Capability metadata, reachable from the solver types themselves (the
/// planner works on [`SolverId`]; this trait ties each record to its
/// implementation).
pub trait Capabilities {
    /// The static capability record of this solver type.
    fn capabilities() -> SolverCaps;
}

macro_rules! impl_capabilities {
    ($($ty:ty => $id:expr),+ $(,)?) => {$(
        impl Capabilities for $ty {
            fn capabilities() -> SolverCaps {
                $id.capabilities()
            }
        }
    )+};
}

impl_capabilities!(
    crate::BlockedCollectBroadcast => SolverId::BlockedCollectBroadcast,
    crate::BlockedInMemory => SolverId::BlockedInMemory,
    crate::FloydWarshall2D => SolverId::FloydWarshall2D,
    crate::RepeatedSquaring => SolverId::RepeatedSquaring,
    crate::CartesianSquaring => SolverId::CartesianSquaring,
    crate::DistributedJohnson => SolverId::DistributedJohnson,
    crate::MpiFw2d => SolverId::MpiFw2d,
    crate::MpiDcApsp => SolverId::MpiDc,
    crate::directed::DirectedBlockedCB => SolverId::DirectedBlockedCB,
    crate::directed::DirectedFloydWarshall2D => SolverId::DirectedFloydWarshall2D,
);

// ---------------------------------------------------------------------------
// Problem
// ---------------------------------------------------------------------------

/// Optional resource knowledge the planner folds into its decision.
#[derive(Debug, Clone, Default)]
pub struct ResourceHints {
    /// Core count to plan for (default: the context's cores).
    pub cores: Option<usize>,
    /// Cluster description for the feasibility model (default:
    /// [`ClusterSpec::local`] of the planned core count).
    pub cluster: Option<ClusterSpec>,
    /// Pinned block size (skips the tuner; feasibility is still checked
    /// and reported).
    pub block_size: Option<usize>,
    /// Explicit RDD partition count (default: `2 × cores`).
    pub partitions: Option<usize>,
}

enum Input<'a> {
    Graph(&'a Graph),
    DiGraph(&'a DiGraph),
    Dense(&'a Matrix),
}

/// A typed all-pairs path query: what to solve, over which input, with
/// which resources. Build it, then [`Problem::plan`] or
/// [`Problem::solve`].
pub struct Problem<'a> {
    input: Input<'a>,
    directed: bool,
    workload: Workload,
    paths: bool,
    prefer: Option<SolverId>,
    kernel: MinPlusKernel,
    partitioner: PartitionerChoice,
    validate: bool,
    hints: ResourceHints,
    checkpoint: Option<CheckpointSpec>,
    store: Option<PathBuf>,
}

impl<'a> Problem<'a> {
    fn with_input(input: Input<'a>, directed: bool) -> Self {
        Problem {
            input,
            directed,
            workload: Workload::ShortestPaths,
            paths: false,
            prefer: None,
            kernel: MinPlusKernel::Auto,
            partitioner: PartitionerChoice::MultiDiagonal,
            validate: true,
            hints: ResourceHints::default(),
            checkpoint: None,
            store: None,
        }
    }

    /// A problem over an undirected weighted [`Graph`] — no manual
    /// `to_dense()` needed; the planner derives each workload's dense
    /// form itself.
    pub fn new(g: &'a Graph) -> Self {
        Self::with_input(Input::Graph(g), false)
    }

    /// A problem over a directed [`DiGraph`].
    pub fn from_digraph(g: &'a DiGraph) -> Self {
        Self::with_input(Input::DiGraph(g), true)
    }

    /// A problem over a dense weight matrix following the adjacency
    /// conventions (`0` diagonal, [`INF`] non-edges). Assumed symmetric;
    /// call [`Problem::directed`] for asymmetric instances.
    pub fn from_matrix(m: &'a Matrix) -> Self {
        Self::with_input(Input::Dense(m), false)
    }

    /// Marks the input as directed (asymmetric weights allowed).
    pub fn directed(mut self) -> Self {
        self.directed = true;
        self
    }

    /// Selects the workload (default: [`Workload::ShortestPaths`]).
    pub fn workload(mut self, w: Workload) -> Self {
        self.workload = w;
        self
    }

    /// Requests witness paths: the solve tracks per-cell vias and
    /// [`Solution::path`] reconstructs routes.
    pub fn with_paths(mut self) -> Self {
        self.paths = true;
        self
    }

    /// Expresses a solver preference. The planner honors it when the
    /// capability rules allow and records a note when they force a
    /// fallback.
    pub fn prefer(mut self, solver: SolverId) -> Self {
        self.prefer = Some(solver);
        self
    }

    /// Pins the decomposition block size (skips the tuner).
    pub fn block_size(mut self, b: usize) -> Self {
        self.hints.block_size = Some(b);
        self
    }

    /// Plans for an explicit core count instead of the context's.
    pub fn cores(mut self, cores: usize) -> Self {
        self.hints.cores = Some(cores);
        self
    }

    /// Supplies a cluster description for the feasibility model (default:
    /// a [`ClusterSpec::local`] description of this machine).
    pub fn on_cluster(mut self, spec: ClusterSpec) -> Self {
        self.hints.cluster = Some(spec);
        self
    }

    /// Sets an explicit RDD partition count.
    pub fn partitions(mut self, partitions: usize) -> Self {
        self.hints.partitions = Some(partitions);
        self
    }

    /// Pins the min-plus kernel tier (default: auto dispatch by side).
    pub fn kernel(mut self, kernel: MinPlusKernel) -> Self {
        self.kernel = kernel;
        self
    }

    /// Selects the block partitioner (default: multi-diagonal).
    pub fn partitioner(mut self, p: PartitionerChoice) -> Self {
        self.partitioner = p;
        self
    }

    /// Disables input validation (trusted inputs, benchmarks).
    pub fn without_validation(mut self) -> Self {
        self.validate = false;
        self
    }

    /// Attaches a checkpoint/resume spec (see [`CheckpointSpec`]).
    pub fn checkpoint(mut self, spec: CheckpointSpec) -> Self {
        self.checkpoint = Some(spec);
        self
    }

    /// Snapshot every `k` engine rounds into `dir`.
    pub fn checkpoint_every(self, dir: impl Into<std::path::PathBuf>, k: usize) -> Self {
        self.checkpoint(CheckpointSpec::every(dir, k))
    }

    /// Persists the solved closure into `dir` as a committed on-disk
    /// store (see [`crate::store`]): after the solve succeeds,
    /// [`Problem::execute`] runs [`Solution::save`] so a later process
    /// can [`Solution::open`] the answer and point-query it without
    /// re-solving.
    pub fn store(mut self, dir: impl Into<PathBuf>) -> Self {
        self.store = Some(dir.into());
        self
    }

    /// Resumes from the latest committed round under `dir` (typed
    /// [`ApspError::Checkpoint`] when none is committed or the snapshot
    /// was taken by a different solve). Combined with
    /// [`Problem::checkpoint_every`], the resumed run keeps snapshotting
    /// into the same directory.
    pub fn resume(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        let dir = dir.into();
        self.checkpoint = Some(match self.checkpoint.take() {
            Some(mut spec) => {
                spec.dir = dir;
                spec.resume = true;
                spec
            }
            None => CheckpointSpec::resume_from(dir),
        });
        self
    }

    /// Vertex count of the input.
    pub fn order(&self) -> usize {
        match self.input {
            Input::Graph(g) => g.order(),
            Input::DiGraph(g) => g.order(),
            Input::Dense(m) => m.order(),
        }
    }

    // -- planning ----------------------------------------------------------

    /// Runs the planner: capability rules, the block-size tuner, and the
    /// cluster model's feasibility verdicts, producing the [`Plan`] that
    /// [`Problem::execute`] runs. Pure decision-making — no solve happens
    /// here.
    pub fn plan(&self, ctx: &SparkContext) -> Result<Plan, ApspError> {
        let n = self.order();
        if n == 0 {
            return Err(ApspError::InvalidInput("empty graph".into()));
        }
        if self.hints.block_size == Some(0) {
            return Err(ApspError::InvalidConfig(
                "block size must be positive".into(),
            ));
        }
        let mut notes = Vec::new();
        let directed = self.directed;

        // --- Solver selection: start from the preference (or the paper's
        // winner) and let the capability rules veto.
        let mut solver = self.prefer.unwrap_or(if directed {
            SolverId::DirectedBlockedCB
        } else {
            SolverId::BlockedCollectBroadcast
        });

        if directed && !solver.capabilities().directed {
            let from = solver;
            solver = SolverId::DirectedBlockedCB;
            notes.push(PlanNote::new(
                "directed-input",
                format!(
                    "{} stores only the upper block triangle (undirected); \
                     switching to {} for the asymmetric input",
                    from.name(),
                    solver.name()
                ),
            ));
        }

        if self.workload != Workload::ShortestPaths {
            if directed {
                return Err(ApspError::InvalidConfig(format!(
                    "the {} workload runs on the generic path-algebra engine, which stores \
                     only the upper block triangle and so requires an undirected input; \
                     directed instances currently support shortest paths only",
                    self.workload.label()
                )));
            }
            if !solver.capabilities().algebras {
                let from = solver;
                solver = SolverId::BlockedCollectBroadcast;
                notes.push(PlanNote::new(
                    "algebra-fallback",
                    format!(
                        "{} has no generic path-algebra engine; running the {} workload \
                         on {}",
                        from.name(),
                        self.workload.label(),
                        solver.name()
                    ),
                ));
            }
        }

        if self.paths && !solver.capabilities().paths {
            let from = solver;
            solver = if directed {
                SolverId::DirectedFloydWarshall2D
            } else {
                SolverId::BlockedCollectBroadcast
            };
            notes.push(PlanNote::new(
                "paths-fallback",
                format!(
                    "{} rejects witness-path tracking; falling back to {}",
                    from.name(),
                    solver.name()
                ),
            ));
        }

        // --- Sparse routing: when the default dense winner is about to
        // run on a large road-like graph, switch to the hierarchical
        // partition/stitch path instead of paying the dense O(n²)
        // closure. Only the auto-selected default is rerouted (an
        // explicit preference is a user decision), and only for plain
        // in-memory solves — the store/checkpoint machinery serializes
        // dense closures, which the hierarchical result deliberately
        // never materializes.
        if self.prefer.is_none()
            && solver == SolverId::BlockedCollectBroadcast
            && self.workload == Workload::ShortestPaths
            && self.store.is_none()
            && self.checkpoint.is_none()
        {
            if let Input::Graph(g) = &self.input {
                let density = g.density();
                let avg_degree = g.avg_degree();
                if tuner::prefers_hierarchical(n, density, avg_degree) {
                    solver = SolverId::SparseHierarchical;
                    notes.push(PlanNote::new(
                        "sparse-hierarchical",
                        format!(
                            "density {density:.5} <= {} and avg degree {avg_degree:.1} \
                             <= {} at n = {n} >= {}: partitioned local closures + a \
                             boundary-skeleton solve replace the dense n x n closure \
                             (distances served lazily per query)",
                            tuner::SPARSE_MAX_DENSITY,
                            tuner::SPARSE_MAX_AVG_DEGREE,
                            tuner::SPARSE_MIN_N,
                        ),
                    ));
                }
            }
        }

        // An explicitly preferred hierarchical solver still needs an
        // edge-list input to partition: dense-matrix (and digraph)
        // inputs fall back to the dense winner.
        if solver == SolverId::SparseHierarchical && !matches!(self.input, Input::Graph(_)) {
            solver = SolverId::BlockedCollectBroadcast;
            notes.push(PlanNote::new(
                "sparse-input-fallback",
                format!(
                    "{} partitions an edge-list Graph input; this input is already \
                     a dense matrix, so {} runs instead",
                    SolverId::SparseHierarchical.name(),
                    solver.name()
                ),
            ));
        }

        // --- Block size: closed-form suggestion (or the pin), then the
        // cluster model's feasibility verdict.
        let cores = self.hints.cores.unwrap_or_else(|| ctx.num_cores()).max(1);
        let spec = self
            .hints
            .cluster
            .clone()
            .unwrap_or_else(|| ClusterSpec::local(cores));
        let mut b = self
            .hints
            .block_size
            .unwrap_or_else(|| tuner::suggest_block_size(n, cores, 2))
            .clamp(1, n);
        if let Some(pin) = self.hints.block_size {
            if pin > n {
                notes.push(PlanNote::new(
                    "pinned-clamped",
                    format!("pinned block size {pin} exceeds n = {n}; clamped to {b}"),
                ));
            }
        }

        let rates = KernelRates::paper();
        let ov = SparkOverheads::default();
        let mut projection = None;
        if let Some(kind) = solver.capabilities().model {
            let proj = self.project(kind, n, b, &spec, &rates, &ov);
            if proj.feasibility.is_feasible() {
                projection = Some(proj);
            } else if self.hints.block_size.is_some() {
                notes.push(PlanNote::new(
                    "pinned-infeasible",
                    format!(
                        "pinned block size {b} is projected infeasible for {} ({:?}); \
                         keeping the pin",
                        solver.name(),
                        proj.feasibility
                    ),
                ));
                projection = Some(proj);
            } else if let Some(b2) = tuner::feasible_block_size(kind, n, &spec, &rates, &ov, b) {
                notes.push(PlanNote::new(
                    "block-retune",
                    format!(
                        "closed-form block size {b} is projected infeasible for {} \
                         ({:?}); re-tuned to {b2}",
                        solver.name(),
                        proj.feasibility
                    ),
                ));
                b = b2;
                projection = Some(self.project(kind, n, b, &spec, &rates, &ov));
            } else if kind == SolverKind::BlockedInMemory {
                // The paper's Table 3 move: when Blocked-IM cannot run at
                // this scale for any block size, Blocked-CB takes over.
                if let Some(b2) = tuner::feasible_block_size(
                    SolverKind::BlockedCollectBroadcast,
                    n,
                    &spec,
                    &rates,
                    &ov,
                    b,
                ) {
                    notes.push(PlanNote::new(
                        "im-infeasible-fallback",
                        format!(
                            "{} is projected infeasible at n = {n} for every block size \
                             ({:?}); falling back to {} with b = {b2}, as in the \
                             paper's Table 3",
                            solver.name(),
                            proj.feasibility,
                            SolverId::BlockedCollectBroadcast.name()
                        ),
                    ));
                    solver = SolverId::BlockedCollectBroadcast;
                    b = b2;
                    projection = Some(self.project(
                        SolverKind::BlockedCollectBroadcast,
                        n,
                        b,
                        &spec,
                        &rates,
                        &ov,
                    ));
                } else {
                    notes.push(PlanNote::new(
                        "infeasible",
                        format!(
                            "no block size is projected feasible for {} or the \
                             Blocked-CB fallback at n = {n} on this cluster; proceeding \
                             with b = {b}",
                            solver.name()
                        ),
                    ));
                    projection = Some(proj);
                }
            } else {
                notes.push(PlanNote::new(
                    "infeasible",
                    format!(
                        "no block size is projected feasible for {} at n = {n} on this \
                         cluster; proceeding with b = {b}",
                        solver.name()
                    ),
                ));
                projection = Some(proj);
            }
        }

        Ok(Plan {
            solver,
            block_size: b,
            kernel: self.kernel,
            partitioner: self.partitioner,
            workload: self.workload,
            paths: self.paths,
            directed,
            n,
            cores,
            partitions: self.hints.partitions,
            validate: self.validate,
            checkpoint: self.checkpoint.clone(),
            store: self.store.clone(),
            notes,
            projection,
        })
    }

    fn project(
        &self,
        kind: SolverKind,
        n: usize,
        b: usize,
        spec: &ClusterSpec,
        rates: &KernelRates,
        ov: &SparkOverheads,
    ) -> Projection {
        let w = ModelWorkload {
            n,
            b,
            partitions_per_core: 2,
            partitioner: match self.partitioner {
                PartitionerChoice::MultiDiagonal => PartitionerKind::MultiDiagonal,
                PartitionerChoice::PortableHash => PartitionerKind::PortableHash,
            },
        };
        project(kind, &w, spec, rates, ov)
    }

    /// Plans and executes in one call: the headline
    /// `Problem::new(&g).solve(&ctx)` entry point.
    pub fn solve(&self, ctx: &SparkContext) -> Result<Solution, ApspError> {
        let plan = self.plan(ctx)?;
        self.execute(ctx, plan)
    }

    // -- execution ---------------------------------------------------------

    /// Executes a (possibly hand-tweaked) plan against this problem's
    /// input. The plan compiles down to the expert layer
    /// ([`Plan::solver_config`] plus the selected solver's public
    /// `solve`), so results are bit-exact with explicit calls.
    pub fn execute(&self, ctx: &SparkContext, plan: Plan) -> Result<Solution, ApspError> {
        let start = Instant::now();
        let store_dir = plan.store.clone();
        let sol = match plan.workload {
            Workload::ShortestPaths => self.execute_tropical(ctx, plan, start),
            Workload::Widest => self.execute_widest(ctx, plan, start),
            Workload::Reachability => self.execute_reachability(ctx, plan, start),
        }?;
        if let Some(dir) = store_dir {
            sol.save(&dir)?;
        }
        Ok(sol)
    }

    fn execute_tropical(
        &self,
        ctx: &SparkContext,
        plan: Plan,
        start: Instant,
    ) -> Result<Solution, ApspError> {
        let cfg = plan.solver_config();
        // The hierarchical path partitions the edge list directly —
        // branch *before* the dense materialization below, so a sparse
        // input routed here never allocates n² cells.
        if plan.solver == SolverId::SparseHierarchical {
            let g = match &self.input {
                Input::Graph(g) => g,
                _ => {
                    return Err(ApspError::InvalidConfig(
                        "the hierarchical solver needs an edge-list Graph input \
                         (planner bug: the sparse-input-fallback rule was skipped)"
                            .into(),
                    ))
                }
            };
            if plan.validate {
                self.validate_weights()?;
            }
            let hcfg = HierarchyConfig {
                target_part_size: None,
                track_paths: plan.paths,
            };
            let h = HierarchicalClosure::solve(ctx, g, &hcfg)?;
            let metrics = h.skeleton_metrics;
            // Outer stages: one local closure per part + the skeleton solve.
            let iterations = h.stats().parts as u64 + h.skeleton_iterations;
            return Ok(Solution {
                n: plan.n,
                workload: Workload::ShortestPaths,
                values: Values::Hierarchical(Box::new(h)),
                vias: None,
                plan,
                metrics,
                elapsed: start.elapsed(),
                iterations,
            });
        }
        let owned;
        let adj: &Matrix = match self.input {
            Input::Graph(g) => {
                owned = g.to_dense();
                &owned
            }
            Input::DiGraph(g) => {
                owned = g.to_dense();
                &owned
            }
            Input::Dense(m) => m,
        };
        // Two execution substrates, made unrepresentable to mix up: the
        // sparklet engine returns an [`ApspResult`] with live metrics,
        // the MPI baselines return bare matrices.
        // One short-lived value per solve, consumed immediately below —
        // the variant size skew clippy flags never matters here.
        #[allow(clippy::large_enum_variant)]
        enum Executed {
            Engine(ApspResult),
            Mpi(Matrix, Option<ParentMatrix>, u64),
        }
        let executed = match plan.solver {
            SolverId::BlockedCollectBroadcast => {
                Executed::Engine(crate::BlockedCollectBroadcast.solve(ctx, adj, &cfg)?)
            }
            SolverId::BlockedInMemory => {
                Executed::Engine(crate::BlockedInMemory.solve(ctx, adj, &cfg)?)
            }
            SolverId::FloydWarshall2D => {
                Executed::Engine(crate::FloydWarshall2D.solve(ctx, adj, &cfg)?)
            }
            SolverId::RepeatedSquaring => {
                Executed::Engine(crate::RepeatedSquaring.solve(ctx, adj, &cfg)?)
            }
            SolverId::CartesianSquaring => {
                Executed::Engine(crate::CartesianSquaring.solve(ctx, adj, &cfg)?)
            }
            SolverId::DistributedJohnson => {
                Executed::Engine(crate::DistributedJohnson.solve(ctx, adj, &cfg)?)
            }
            SolverId::DirectedBlockedCB => {
                Executed::Engine(crate::directed::DirectedBlockedCB.solve(ctx, adj, &cfg)?)
            }
            SolverId::DirectedFloydWarshall2D => {
                Executed::Engine(crate::directed::DirectedFloydWarshall2D.solve(ctx, adj, &cfg)?)
            }
            SolverId::MpiFw2d => {
                let grid = ((plan.cores as f64).sqrt().floor() as usize).max(1);
                let solver = crate::MpiFw2d::new(grid);
                if plan.paths {
                    let (r, parents) = solver.solve_matrix_paths(adj)?;
                    Executed::Mpi(r.distances, Some(parents), adj.order() as u64)
                } else {
                    let r = solver.solve_matrix(adj)?;
                    Executed::Mpi(r.distances, None, adj.order() as u64)
                }
            }
            SolverId::MpiDc => {
                let solver = crate::MpiDcApsp::new(plan.cores.max(1));
                if plan.paths {
                    let (r, parents) = solver.solve_matrix_paths(adj)?;
                    Executed::Mpi(r.distances, Some(parents), 1)
                } else {
                    let r = solver.solve_matrix(adj)?;
                    Executed::Mpi(r.distances, None, 1)
                }
            }
            SolverId::SparseHierarchical => {
                return Err(ApspError::InvalidConfig(
                    "the hierarchical solver is handled before dense materialization \
                     (unreachable: execute_tropical returned early above)"
                        .into(),
                ))
            }
        };
        let (values, vias, metrics, iterations) = match executed {
            Executed::Engine(res) => {
                let metrics = res.metrics;
                let iterations = res.iterations;
                let (distances, parents) = split_apsp_result(res);
                (distances, parents, metrics, iterations)
            }
            Executed::Mpi(distances, parents, iterations) => {
                (distances, parents, MetricsSnapshot::default(), iterations)
            }
        };
        Ok(Solution {
            n: plan.n,
            workload: Workload::ShortestPaths,
            values: Values::Distances(values),
            vias,
            plan,
            metrics,
            elapsed: start.elapsed(),
            iterations,
        })
    }

    /// In-memory inputs get the same scrutiny the file loader
    /// (`graph::io`) applies: a NaN or negative weight is a typed
    /// [`ApspError::InvalidInput`], never silently coerced into "no edge"
    /// or a bogus capacity.
    fn validate_weights(&self) -> Result<(), ApspError> {
        let check = |i: usize, j: usize, w: f64| -> Result<(), ApspError> {
            if w.is_nan() {
                return Err(ApspError::InvalidInput(format!(
                    "weight ({i}, {j}) is NaN — in-memory inputs follow the \
                     same rules as file inputs (finite or +inf non-edge)"
                )));
            }
            if w < 0.0 {
                return Err(ApspError::InvalidInput(format!(
                    "weight ({i}, {j}) is negative ({w}) — the {} workload \
                     requires non-negative weights",
                    self.workload.label()
                )));
            }
            Ok(())
        };
        match self.input {
            Input::Graph(g) => {
                for (u, v, w) in g.edges() {
                    check(u as usize, v as usize, w)?;
                }
            }
            Input::DiGraph(g) => {
                for (u, v, w) in g.arcs() {
                    check(u as usize, v as usize, w)?;
                }
            }
            Input::Dense(m) => {
                let n = m.order();
                for i in 0..n {
                    for j in 0..n {
                        let w = m.get(i, j);
                        if w.is_finite() || w.is_nan() {
                            check(i, j, w)?;
                        }
                    }
                }
            }
        }
        Ok(())
    }

    fn capacities(&self) -> Result<Matrix, ApspError> {
        match self.input {
            Input::Graph(g) => Ok(g.to_dense_capacities()),
            Input::Dense(m) => {
                // Adjacency conventions → (max, min) conventions: weights
                // become capacities, INF non-edges become 0 (no pipe), the
                // diagonal becomes the multiplicative identity +∞.
                Ok(Matrix::from_fn(m.order(), |i, j| {
                    if i == j {
                        INF
                    } else {
                        let w = m.get(i, j);
                        if w.is_finite() {
                            w
                        } else {
                            0.0
                        }
                    }
                }))
            }
            Input::DiGraph(_) => Err(ApspError::InvalidConfig(
                "widest-paths is undirected-only (checked at planning time)".into(),
            )),
        }
    }

    fn execute_widest(
        &self,
        ctx: &SparkContext,
        plan: Plan,
        start: Instant,
    ) -> Result<Solution, ApspError> {
        let cfg = plan.solver_config();
        if plan.validate {
            self.validate_weights()?;
        }
        let caps = self.capacities()?;
        let n = caps.order();
        let weight = |i: usize, j: usize| caps.get(i, j);
        if plan.paths {
            let r = solve_algebra_on::<TrackedWidest>(plan.solver, ctx, n, &weight, &cfg)?;
            let (metrics, iterations) = (r.metrics, r.iterations);
            let (values, pays) = r.into_parts();
            Ok(Solution {
                n,
                workload: Workload::Widest,
                values: Values::Widths(values),
                vias: Some(ParentMatrix::from_vias(n, pays)),
                plan,
                metrics,
                elapsed: start.elapsed(),
                iterations,
            })
        } else {
            let r = solve_algebra_on::<WidestAlgebra>(plan.solver, ctx, n, &weight, &cfg)?;
            let (metrics, iterations) = (r.metrics, r.iterations);
            Ok(Solution {
                n,
                workload: Workload::Widest,
                values: Values::Widths(r.into_values()),
                vias: None,
                plan,
                metrics,
                elapsed: start.elapsed(),
                iterations,
            })
        }
    }

    fn execute_reachability(
        &self,
        ctx: &SparkContext,
        plan: Plan,
        start: Instant,
    ) -> Result<Solution, ApspError> {
        let cfg = plan.solver_config();
        if plan.validate {
            self.validate_weights()?;
        }
        let n = self.order();
        let adj = match self.input {
            Input::Graph(g) => crate::algebra::boolean_adjacency(g),
            Input::Dense(m) => {
                // Adjacency conventions → (∨, ∧) conventions: finite
                // off-diagonal weights are edges, the diagonal is `true`.
                let mut adj = vec![false; n * n];
                for i in 0..n {
                    for j in 0..n {
                        adj[i * n + j] = i == j || m.get(i, j).is_finite();
                    }
                }
                adj
            }
            Input::DiGraph(_) => {
                return Err(ApspError::InvalidConfig(
                    "reachability is undirected-only (checked at planning time)".into(),
                ))
            }
        };
        let weight = |i: usize, j: usize| adj[i * n + j];
        if plan.paths {
            let r = solve_algebra_on::<TrackedReachability>(plan.solver, ctx, n, &weight, &cfg)?;
            let (metrics, iterations) = (r.metrics, r.iterations);
            let (values, pays) = r.into_parts();
            Ok(Solution {
                n,
                workload: Workload::Reachability,
                values: Values::Reach(values),
                vias: Some(ParentMatrix::from_vias(n, pays)),
                plan,
                metrics,
                elapsed: start.elapsed(),
                iterations,
            })
        } else {
            let r = solve_algebra_on::<ReachAlgebra>(plan.solver, ctx, n, &weight, &cfg)?;
            let (metrics, iterations) = (r.metrics, r.iterations);
            Ok(Solution {
                n,
                workload: Workload::Reachability,
                values: Values::Reach(r.into_values()),
                vias: None,
                plan,
                metrics,
                elapsed: start.elapsed(),
                iterations,
            })
        }
    }
}

/// Splits an [`ApspResult`] into its distance matrix and optional parent
/// matrix without re-solving.
fn split_apsp_result(res: ApspResult) -> (Matrix, Option<ParentMatrix>) {
    res.into_distances_and_parents()
}

/// Monomorphic dispatch of the generic algebra engine over the planner's
/// algebra-capable solvers.
fn solve_algebra_on<A: PathAlgebra>(
    id: SolverId,
    ctx: &SparkContext,
    n: usize,
    weight: &dyn Fn(usize, usize) -> Elem<A>,
    cfg: &SolverConfig,
) -> Result<crate::algebra::AlgebraResult<A>, ApspError>
where
    ElemBlock<A::Semi>: crate::algebra::Stageable,
    Elem<A>: EstimateSize,
{
    match id {
        SolverId::BlockedCollectBroadcast => {
            crate::BlockedCollectBroadcast.solve_algebra::<A>(ctx, n, weight, cfg)
        }
        SolverId::BlockedInMemory => crate::BlockedInMemory.solve_algebra::<A>(ctx, n, weight, cfg),
        SolverId::FloydWarshall2D => crate::FloydWarshall2D.solve_algebra::<A>(ctx, n, weight, cfg),
        SolverId::RepeatedSquaring => {
            crate::RepeatedSquaring.solve_algebra::<A>(ctx, n, weight, cfg)
        }
        other => Err(ApspError::InvalidConfig(format!(
            "{} has no generic path-algebra engine (planner bug: capability rule skipped)",
            other.name()
        ))),
    }
}

// ---------------------------------------------------------------------------
// Plan
// ---------------------------------------------------------------------------

/// One capability or feasibility rule that fired during planning, with a
/// stable rule id (for tests and tooling) and a human-readable detail
/// line (for [`Plan::explain`]).
#[derive(Debug, Clone)]
pub struct PlanNote {
    /// Stable machine-readable rule id (e.g. `paths-fallback`).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub detail: String,
}

impl PlanNote {
    fn new(rule: &'static str, detail: String) -> Self {
        PlanNote { rule, detail }
    }
}

/// The planner's decision: which solver, block size, kernel tier, and
/// partitioner a [`Problem`] compiles to, plus the rule trail that led
/// there. Execute with [`Problem::execute`], or inspect with
/// [`Plan::explain`] / [`Plan::solver_config`].
#[derive(Debug, Clone)]
pub struct Plan {
    /// The selected solver.
    pub solver: SolverId,
    /// The selected decomposition block side `b`.
    pub block_size: usize,
    /// The selected min-plus kernel (usually `Auto`; see
    /// [`Plan::kernel_tier`] for what `Auto` resolves to).
    pub kernel: MinPlusKernel,
    /// The selected block partitioner.
    pub partitioner: PartitionerChoice,
    /// The planned workload.
    pub workload: Workload,
    /// Whether witness paths are tracked.
    pub paths: bool,
    /// Whether the input is directed.
    pub directed: bool,
    /// Problem order (vertex count).
    pub n: usize,
    /// Core count planned for.
    pub cores: usize,
    partitions: Option<usize>,
    validate: bool,
    checkpoint: Option<CheckpointSpec>,
    store: Option<PathBuf>,
    notes: Vec<PlanNote>,
    projection: Option<Projection>,
}

impl Plan {
    /// The rules that fired during planning (empty when the defaults
    /// applied cleanly).
    pub fn notes(&self) -> &[PlanNote] {
        &self.notes
    }

    /// The cluster model's projection for the selected configuration,
    /// when the solver maps onto the model.
    pub fn projection(&self) -> Option<&Projection> {
        self.projection.as_ref()
    }

    /// The expert-layer configuration this plan compiles down to: running
    /// the selected solver with exactly this config reproduces the
    /// planned solve bit-for-bit.
    pub fn solver_config(&self) -> SolverConfig {
        let mut cfg = SolverConfig::new(self.block_size)
            .with_partitioner(self.partitioner)
            .with_kernel(self.kernel);
        if let Some(p) = self.partitions {
            cfg = cfg.with_partitions(p);
        }
        if self.paths {
            cfg = cfg.with_paths();
        }
        if !self.validate {
            cfg = cfg.without_validation();
        }
        if let Some(spec) = &self.checkpoint {
            cfg = cfg.with_checkpoints(spec.clone());
        }
        cfg
    }

    /// Attaches (or replaces) a checkpoint/resume spec on an existing
    /// plan — the plan-level twin of [`Problem::checkpoint`].
    pub fn with_checkpoints(mut self, spec: CheckpointSpec) -> Self {
        self.checkpoint = Some(spec);
        self
    }

    /// Persists the solved closure into `dir` after execution — the
    /// plan-level twin of [`Problem::store`].
    pub fn with_store(mut self, dir: impl Into<PathBuf>) -> Self {
        self.store = Some(dir.into());
        self
    }

    /// The closure-store directory this plan will save into, if any.
    pub fn store_dir(&self) -> Option<&Path> {
        self.store.as_deref()
    }

    /// Resumes this plan's solve from the latest committed round under
    /// `dir`, keeping any snapshot policy already attached — the
    /// plan-level twin of [`Problem::resume`].
    pub fn resume(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        let dir = dir.into();
        self.checkpoint = Some(match self.checkpoint.take() {
            Some(mut spec) => {
                spec.dir = dir;
                spec.resume = true;
                spec
            }
            None => CheckpointSpec::resume_from(dir),
        });
        self
    }

    /// Human-readable description of the kernel tier the solve will run:
    /// the explicit tier when pinned, what `Auto` dispatches to for this
    /// block size otherwise.
    pub fn kernel_tier(&self) -> String {
        match self.workload {
            Workload::ShortestPaths => match self.kernel {
                MinPlusKernel::Auto => {
                    if self.paths {
                        format!(
                            "auto -> {:?} (tracked tier)",
                            kernels::select_tracked(self.block_size)
                        )
                    } else {
                        format!("auto -> {:?}", kernels::select(self.block_size))
                    }
                }
                other => format!("{other:?} (pinned)"),
            },
            Workload::Widest => {
                if self.paths {
                    "generic tracked loops (bottleneck + argmax payload)".into()
                } else {
                    match self.kernel {
                        MinPlusKernel::Auto => format!(
                            "auto -> {:?} (packed (max, min) engine)",
                            kernels::select_maxmin(self.block_size)
                        ),
                        other => format!("{other:?} (pinned, (max, min) engine)"),
                    }
                }
            }
            Workload::Reachability => {
                if self.paths {
                    "generic tracked loops (boolean + via payload)".into()
                } else {
                    match self.kernel {
                        MinPlusKernel::Auto => "bitset (64 cells per u64 word)".into(),
                        MinPlusKernel::Naive => "Naive (pinned, boolean oracle loop)".into(),
                        other => format!("{other:?} (pinned -> bitset)"),
                    }
                }
            }
        }
    }

    /// Renders the full planning report: the problem shape, every
    /// selected knob, the cluster model's verdict, and each rule that
    /// fired.
    pub fn explain(&self) -> String {
        let mut out = String::new();
        let q = self.n.div_ceil(self.block_size.max(1));
        out.push_str(&format!(
            "plan for n = {} ({}, {}, paths {})\n",
            self.n,
            if self.directed {
                "directed"
            } else {
                "undirected"
            },
            self.workload.label(),
            if self.paths { "tracked" } else { "off" },
        ));
        out.push_str(&format!("  solver      = {}\n", self.solver.name()));
        out.push_str(&format!(
            "  block size  = {} (q = {q} blocks/side)\n",
            self.block_size
        ));
        out.push_str(&format!("  kernel tier = {}\n", self.kernel_tier()));
        let partitions = self
            .partitions
            .map(|p| p.to_string())
            .unwrap_or_else(|| format!("{} (2 x {} cores)", 2 * self.cores, self.cores));
        out.push_str(&format!(
            "  partitioner = {}, {partitions} partitions\n",
            match self.partitioner {
                PartitionerChoice::MultiDiagonal => "multi-diagonal",
                PartitionerChoice::PortableHash => "portable-hash",
            },
        ));
        match &self.projection {
            Some(p) => out.push_str(&format!(
                "  projection  = {:?}, {} iterations (cluster model: {})\n",
                p.feasibility,
                p.iterations,
                p.solver.label()
            )),
            None => out.push_str("  projection  = n/a (solver outside the cluster model)\n"),
        }
        if self.notes.is_empty() {
            out.push_str("  rules       = none (defaults applied cleanly)\n");
        } else {
            out.push_str("  rules:\n");
            for note in &self.notes {
                out.push_str(&format!("    - [{}] {}\n", note.rule, note.detail));
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Solution
// ---------------------------------------------------------------------------

enum Values {
    Distances(Matrix),
    Widths(ElemBlock<BottleneckF64>),
    Reach(ElemBlock<BoolSemiring>),
    /// Disk-resident closure behind an LRU block cache — produced by
    /// [`Solution::open`], never by a solve.
    Stored(ClosureStore),
    /// Lazily-stitched hierarchical closure over a sparse graph — point
    /// queries evaluate `local + skeleton + local` on demand; no `n × n`
    /// matrix exists.
    Hierarchical(Box<HierarchicalClosure>),
}

/// Outcome of a planned solve: one result type over all three workloads,
/// carrying the values, the optional witness vias, the [`Plan`] that
/// produced it, and run metadata.
pub struct Solution {
    n: usize,
    workload: Workload,
    values: Values,
    vias: Option<ParentMatrix>,
    /// The plan this solution executed.
    pub plan: Plan,
    /// Engine-counter increments attributable to this solve (zero for
    /// the MPI baselines, which bypass the Spark engine).
    pub metrics: MetricsSnapshot,
    /// Wall-clock duration of the solve.
    pub elapsed: Duration,
    /// Outer iterations executed.
    pub iterations: u64,
}

impl Solution {
    /// Vertex count.
    pub fn order(&self) -> usize {
        self.n
    }

    /// Which workload this solution answers.
    pub fn workload(&self) -> Workload {
        self.workload
    }

    fn check_node(&self, what: &str, id: usize) -> Result<(), ApspError> {
        if id >= self.n {
            return Err(ApspError::InvalidInput(format!(
                "{what} node id {id} is out of range for n = {}",
                self.n
            )));
        }
        Ok(())
    }

    /// The raw numeric cell under the submatrix conventions: distance
    /// ([`INF`] unreachable), width (`0.0` unreachable), or `1.0`/`0.0`
    /// closure cells. Bounds are the caller's responsibility.
    fn raw_cell(&self, u: usize, v: usize) -> Result<f64, ApspError> {
        match &self.values {
            Values::Distances(m) => Ok(m.get(u, v)),
            Values::Widths(m) => Ok(m.get(u, v)),
            Values::Reach(m) => Ok(if m.get(u, v) { 1.0 } else { 0.0 }),
            Values::Stored(s) => s.cell(u, v),
            Values::Hierarchical(h) => Ok(h.dist(u, v)),
        }
    }

    /// Shortest-path distance from `u` to `v`: `Some(d)` when the
    /// workload is [`Workload::ShortestPaths`] and `v` is reachable,
    /// `None` otherwise (including out-of-range ids — use
    /// [`Solution::try_dist`] to distinguish them).
    pub fn dist(&self, u: usize, v: usize) -> Option<f64> {
        self.try_dist(u, v).ok().flatten()
    }

    /// [`Solution::dist`] with typed failures: out-of-range ids are
    /// [`ApspError::InvalidInput`], store I/O problems are
    /// [`ApspError::Store`], a wrong-workload query is `Ok(None)`.
    pub fn try_dist(&self, u: usize, v: usize) -> Result<Option<f64>, ApspError> {
        self.check_node("source", u)?;
        self.check_node("target", v)?;
        match &self.values {
            Values::Distances(m) => {
                let d = m.get(u, v);
                Ok(d.is_finite().then_some(d))
            }
            Values::Stored(s) if s.workload() == Workload::ShortestPaths => {
                let d = s.cell(u, v)?;
                Ok(d.is_finite().then_some(d))
            }
            Values::Hierarchical(h) => {
                let d = h.dist(u, v);
                Ok(d.is_finite().then_some(d))
            }
            _ => Ok(None),
        }
    }

    /// Bottleneck width from `u` to `v`: `Some(w)` when the workload is
    /// [`Workload::Widest`] and `v` is reachable (the diagonal reports
    /// `+∞` — staying put constrains nothing), `None` otherwise.
    pub fn width(&self, u: usize, v: usize) -> Option<f64> {
        self.try_width(u, v).ok().flatten()
    }

    /// [`Solution::width`] with typed failures (see
    /// [`Solution::try_dist`] for the error contract).
    pub fn try_width(&self, u: usize, v: usize) -> Result<Option<f64>, ApspError> {
        self.check_node("source", u)?;
        self.check_node("target", v)?;
        match &self.values {
            Values::Widths(m) => {
                let w = m.get(u, v);
                Ok((w > 0.0).then_some(w))
            }
            Values::Stored(s) if s.workload() == Workload::Widest => {
                let w = s.cell(u, v)?;
                Ok((w > 0.0).then_some(w))
            }
            _ => Ok(None),
        }
    }

    /// Whether `v` is reachable from `u` — answered by every workload
    /// (finite distance, nonzero width, or a `true` closure cell).
    /// `false` for out-of-range ids; use [`Solution::try_reachable`] to
    /// distinguish.
    pub fn reachable(&self, u: usize, v: usize) -> bool {
        self.try_reachable(u, v).unwrap_or(false)
    }

    /// [`Solution::reachable`] with typed failures (see
    /// [`Solution::try_dist`] for the error contract).
    pub fn try_reachable(&self, u: usize, v: usize) -> Result<bool, ApspError> {
        self.check_node("source", u)?;
        self.check_node("target", v)?;
        match &self.values {
            Values::Distances(m) => Ok(m.get(u, v).is_finite()),
            Values::Widths(m) => Ok(m.get(u, v) > 0.0),
            Values::Reach(m) => Ok(m.get(u, v)),
            Values::Stored(s) => s.reachable(u, v),
            Values::Hierarchical(h) => Ok(h.dist(u, v).is_finite()),
        }
    }

    /// Reconstructs a witness path from `u` to `v`: the shortest route
    /// for [`Workload::ShortestPaths`], a widest route for
    /// [`Workload::Widest`], some connecting route for
    /// [`Workload::Reachability`]. `None` when the solve did not track
    /// paths or `v` is unreachable; `path(u, u)` is `[u]`.
    pub fn path(&self, u: usize, v: usize) -> Option<Vec<NodeId>> {
        self.try_path(u, v).ok().flatten()
    }

    /// [`Solution::path`] with typed failures (see [`Solution::try_dist`]
    /// for the error contract). For store-backed solutions the expansion
    /// loads only the via blocks it touches.
    pub fn try_path(&self, u: usize, v: usize) -> Result<Option<Vec<NodeId>>, ApspError> {
        self.check_node("source", u)?;
        self.check_node("target", v)?;
        if let Values::Stored(s) = &self.values {
            return s.path(u, v);
        }
        if let Values::Hierarchical(h) = &self.values {
            return h.path(u, v);
        }
        let Some(vias) = self.vias.as_ref() else {
            return Ok(None);
        };
        if !self.try_reachable(u, v)? {
            return Ok(None);
        }
        Ok(Some(vias.expand(u, v)))
    }

    /// The `k` vertices "nearest" to `u` under the workload's own order:
    /// ascending distance for shortest paths, descending width for
    /// widest paths, reachable vertices (score `1.0`) in id order for
    /// reachability. `u` itself and unreachable vertices are excluded;
    /// ties break by vertex id.
    pub fn k_nearest(&self, u: usize, k: usize) -> Vec<(NodeId, f64)> {
        self.try_k_nearest(u, k).unwrap_or_default()
    }

    /// [`Solution::k_nearest`] with typed failures (see
    /// [`Solution::try_dist`] for the error contract). Store-backed
    /// solutions sweep the row block-by-block through the cache rather
    /// than loading the full closure.
    pub fn try_k_nearest(&self, u: usize, k: usize) -> Result<Vec<(NodeId, f64)>, ApspError> {
        self.check_node("source", u)?;
        // Hierarchical solutions amortize the stitch across the whole row
        // instead of paying O(|B_u| · |B_v|) per cell.
        if let Values::Hierarchical(h) = &self.values {
            let row = h.row(u)?;
            let mut scored: Vec<(NodeId, f64)> = row
                .into_iter()
                .enumerate()
                .filter(|&(v, d)| v != u && d.is_finite())
                .map(|(v, d)| (v as NodeId, d))
                .collect();
            scored.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
            scored.truncate(k);
            return Ok(scored);
        }
        let mut scored: Vec<(NodeId, f64)> = Vec::new();
        for v in 0..self.n {
            if v == u || !self.try_reachable(u, v)? {
                continue;
            }
            scored.push((v as NodeId, self.raw_cell(u, v)?));
        }
        match self.workload {
            Workload::Widest => {
                scored.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
            }
            _ => scored.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0))),
        }
        scored.truncate(k);
        Ok(scored)
    }

    /// Extracts the numeric values of the `rows × cols` submatrix, one
    /// `Vec` per requested row: distances ([`INF`] when unreachable),
    /// widths (`0.0` when unreachable), or `1.0`/`0.0` closure cells.
    /// Empty on out-of-range ids or an empty window; use
    /// [`Solution::try_submatrix`] to distinguish.
    pub fn submatrix(&self, rows: &[usize], cols: &[usize]) -> Vec<Vec<f64>> {
        self.try_submatrix(rows, cols).unwrap_or_default()
    }

    /// [`Solution::submatrix`] with typed failures: an empty `rows` or
    /// `cols` window and out-of-range ids are
    /// [`ApspError::InvalidInput`]; store I/O problems are
    /// [`ApspError::Store`]. Store-backed solutions stream the window
    /// through the block cache.
    pub fn try_submatrix(
        &self,
        rows: &[usize],
        cols: &[usize],
    ) -> Result<Vec<Vec<f64>>, ApspError> {
        if rows.is_empty() || cols.is_empty() {
            return Err(ApspError::InvalidInput(
                "empty submatrix window: rows and cols must each name at least one vertex".into(),
            ));
        }
        for &i in rows {
            self.check_node("row", i)?;
        }
        for &j in cols {
            self.check_node("column", j)?;
        }
        rows.iter()
            .map(|&i| cols.iter().map(|&j| self.raw_cell(i, j)).collect())
            .collect()
    }

    /// The full distance matrix, for [`Workload::ShortestPaths`]
    /// solutions.
    pub fn distances(&self) -> Option<&Matrix> {
        match &self.values {
            Values::Distances(m) => Some(m),
            _ => None,
        }
    }

    /// The full width matrix, for [`Workload::Widest`] solutions.
    pub fn widths(&self) -> Option<&ElemBlock<BottleneckF64>> {
        match &self.values {
            Values::Widths(m) => Some(m),
            _ => None,
        }
    }

    /// The full closure matrix, for [`Workload::Reachability`] solutions.
    pub fn reachability(&self) -> Option<&ElemBlock<BoolSemiring>> {
        match &self.values {
            Values::Reach(m) => Some(m),
            _ => None,
        }
    }

    /// The witness via matrix, when the solve tracked paths.
    /// `None` for store-backed solutions, whose via plane stays on disk.
    pub fn parents(&self) -> Option<&ParentMatrix> {
        self.vias.as_ref()
    }

    // -- persistence ---------------------------------------------------------

    /// Persists this solution into `dir` as a committed closure store
    /// (see [`crate::store`]): the full block grid is framed and
    /// checksummed, and the manifest is written last, so `dir` either
    /// opens as this exact answer or not at all. A later process gets it
    /// back with [`Solution::open`] — no re-solve, point queries served
    /// from disk through a block cache.
    ///
    /// Store-backed solutions refuse to re-save (the directory already
    /// *is* the store; copy it to relocate).
    pub fn save(&self, dir: impl AsRef<Path>) -> Result<(), ApspError> {
        let dir = dir.as_ref();
        let via_fn = self
            .vias
            .as_ref()
            .map(|pm| move |i: usize, j: usize| pm.via(i, j).unwrap_or(NO_VIA));
        let vias: Option<&dyn Fn(usize, usize) -> u32> = match &via_fn {
            Some(f) => Some(f),
            None => None,
        };
        let write = |values: ValueSource<'_>| {
            store::write_store(
                dir,
                &StoreContents {
                    workload: self.workload,
                    solver: self.plan.solver,
                    directed: self.plan.directed,
                    n: self.n,
                    b: self.plan.block_size.clamp(1, self.n),
                    values,
                    vias,
                },
            )
        };
        match &self.values {
            Values::Distances(m) => {
                let f = |i: usize, j: usize| m.get(i, j);
                write(ValueSource::F64(&f))
            }
            Values::Widths(m) => {
                let f = |i: usize, j: usize| m.get(i, j);
                write(ValueSource::F64(&f))
            }
            Values::Reach(m) => {
                let f = |i: usize, j: usize| m.get(i, j);
                write(ValueSource::Bool(&f))
            }
            Values::Stored(s) => Err(ApspError::Store(format!(
                "this solution is already store-backed (under '{}'); copy the \
                 directory to relocate it",
                s.dir().display()
            ))),
            Values::Hierarchical(_) => Err(ApspError::Store(
                "hierarchical solutions serve point queries lazily and never \
                 materialize the n x n closure a store would persist; re-solve \
                 with prefer(BlockedCollectBroadcast) to save"
                    .into(),
            )),
        }
    }

    /// Opens a committed closure store as a `Solution`, with the default
    /// cache budget ([`crate::store::DEFAULT_STORE_CACHE_BUDGET`]). The
    /// manifest is validated up front; blocks load lazily as queries
    /// touch them, so opening is O(1) in the closure size.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Solution, ApspError> {
        Self::open_with_cache_budget(dir, store::DEFAULT_STORE_CACHE_BUDGET)
    }

    /// [`Solution::open`] with an explicit decoded-block cache budget in
    /// bytes — small budgets bound resident memory and trade it for
    /// re-reads (observable via [`Solution::store`] metrics).
    pub fn open_with_cache_budget(
        dir: impl Into<PathBuf>,
        cache_budget_bytes: u64,
    ) -> Result<Solution, ApspError> {
        Ok(Self::from_store(ClosureStore::open_with_budget(
            dir,
            cache_budget_bytes,
        )?))
    }

    /// Wraps an already-open [`ClosureStore`] as a `Solution`. The plan
    /// is reconstructed from the store manifest (solver, geometry,
    /// workload, tracking) with a `store-open` note marking its origin.
    pub fn from_store(store: ClosureStore) -> Solution {
        let note = PlanNote::new(
            "store-open",
            format!(
                "plan reconstructed from the store manifest under '{}'",
                store.dir().display()
            ),
        );
        let plan = Plan {
            solver: store.solver(),
            block_size: store.block_size(),
            kernel: MinPlusKernel::Auto,
            partitioner: PartitionerChoice::MultiDiagonal,
            workload: store.workload(),
            paths: store.tracked(),
            directed: store.directed(),
            n: store.order(),
            cores: 1,
            partitions: None,
            validate: true,
            checkpoint: None,
            store: None,
            notes: vec![note],
            projection: None,
        };
        Solution {
            n: store.order(),
            workload: store.workload(),
            values: Values::Stored(store),
            vias: None,
            plan,
            metrics: MetricsSnapshot::default(),
            elapsed: Duration::ZERO,
            iterations: 0,
        }
    }

    /// The backing [`ClosureStore`] of a store-backed solution — live
    /// cache counters, geometry, and the backing directory. `None` for
    /// in-memory solutions.
    pub fn store(&self) -> Option<&ClosureStore> {
        match &self.values {
            Values::Stored(s) => Some(s),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apsp_graph::generators;
    use sparklet::SparkConfig;

    fn ctx() -> SparkContext {
        SparkContext::new(SparkConfig::with_cores(2))
    }

    #[test]
    fn default_plan_picks_cb() {
        let g = generators::grid(4, 4);
        let plan = Problem::new(&g).plan(&ctx()).unwrap();
        assert_eq!(plan.solver, SolverId::BlockedCollectBroadcast);
        assert!(plan.notes().is_empty());
        assert!(plan.block_size >= 1 && plan.block_size <= 16);
        assert!(plan.projection().unwrap().feasibility.is_feasible());
    }

    #[test]
    fn headline_call_works_for_all_three_workloads() {
        let g = generators::grid(3, 3);
        let sc = ctx();
        for w in [
            Workload::ShortestPaths,
            Workload::Widest,
            Workload::Reachability,
        ] {
            let sol = Problem::new(&g)
                .workload(w)
                .with_paths()
                .solve(&sc)
                .unwrap();
            assert_eq!(sol.workload(), w);
            assert!(sol.reachable(0, 8));
            let p = sol.path(0, 8).expect("grid is connected and paths tracked");
            assert_eq!(p.first(), Some(&0));
            assert_eq!(p.last(), Some(&8));
        }
    }

    #[test]
    fn directed_input_routes_to_directed_solver() {
        let g = generators::erdos_renyi_directed(20, 0.15, 3);
        let plan = Problem::from_digraph(&g).plan(&ctx()).unwrap();
        assert_eq!(plan.solver, SolverId::DirectedBlockedCB);
    }

    #[test]
    fn directed_algebra_workloads_are_rejected() {
        let g = generators::erdos_renyi_directed(10, 0.2, 1);
        let err = Problem::from_digraph(&g)
            .workload(Workload::Widest)
            .plan(&ctx())
            .unwrap_err();
        assert!(matches!(err, ApspError::InvalidConfig(_)));
    }

    #[test]
    fn empty_input_is_rejected() {
        let g = Graph::new(0);
        assert!(matches!(
            Problem::new(&g).plan(&ctx()),
            Err(ApspError::InvalidInput(_))
        ));
    }

    #[test]
    fn zero_block_size_pin_is_rejected() {
        let g = generators::grid(2, 2);
        assert!(matches!(
            Problem::new(&g).block_size(0).plan(&ctx()),
            Err(ApspError::InvalidConfig(_))
        ));
    }

    #[test]
    fn oversized_block_size_pin_is_clamped_with_a_note() {
        let g = generators::grid(3, 3);
        let plan = Problem::new(&g).block_size(256).plan(&ctx()).unwrap();
        assert_eq!(plan.block_size, 9);
        assert!(
            plan.notes().iter().any(|n| n.rule == "pinned-clamped"),
            "clamping an explicit pin must be recorded: {:?}",
            plan.notes()
        );
        assert!(plan.explain().contains("pinned-clamped"));
    }

    #[test]
    fn solution_point_queries() {
        // 0 -1- 1 -2- 2, isolated 3.
        let g = Graph::from_edges(4, [(0, 1, 1.0), (1, 2, 2.0)]);
        let sol = Problem::new(&g).with_paths().solve(&ctx()).unwrap();
        assert_eq!(sol.dist(0, 2), Some(3.0));
        assert_eq!(sol.dist(0, 3), None);
        assert_eq!(sol.width(0, 2), None, "wrong workload");
        assert!(sol.reachable(0, 2));
        assert!(!sol.reachable(0, 3));
        assert_eq!(sol.path(0, 2), Some(vec![0, 1, 2]));
        assert_eq!(sol.path(0, 3), None);
        assert_eq!(sol.path(3, 3), Some(vec![3]));
        assert_eq!(sol.k_nearest(0, 5), vec![(1, 1.0), (2, 3.0)]);
        assert_eq!(sol.k_nearest(0, 1), vec![(1, 1.0)]);
        let sub = sol.submatrix(&[0, 3], &[2]);
        assert_eq!(sub[0], vec![3.0]);
        assert_eq!(sub[1], vec![INF]);
    }

    #[test]
    fn k_nearest_widest_prefers_fat_pipes() {
        let g = Graph::from_edges(3, [(0, 1, 10.0), (1, 2, 7.0), (0, 2, 1.0)]);
        let sol = Problem::new(&g)
            .workload(Workload::Widest)
            .solve(&ctx())
            .unwrap();
        assert_eq!(sol.width(0, 2), Some(7.0));
        assert_eq!(sol.k_nearest(0, 2), vec![(1, 10.0), (2, 7.0)]);
        assert_eq!(sol.dist(0, 2), None, "wrong workload");
    }

    #[test]
    fn plan_config_round_trips_to_expert_layer() {
        let g = generators::grid(4, 4);
        let plan = Problem::new(&g)
            .with_paths()
            .block_size(8)
            .plan(&ctx())
            .unwrap();
        let cfg = plan.solver_config();
        assert_eq!(cfg.block_size, 8);
        assert!(cfg.track_paths);
        assert_eq!(cfg.partitioner, PartitionerChoice::MultiDiagonal);
    }

    #[test]
    fn capabilities_reachable_from_types_and_ids() {
        assert_eq!(
            <crate::BlockedCollectBroadcast as Capabilities>::capabilities().id,
            SolverId::BlockedCollectBroadcast
        );
        for id in SolverId::ALL {
            let caps = id.capabilities();
            assert_eq!(caps.id, id);
            assert!(caps.directed || caps.undirected);
        }
        assert!(!SolverId::DirectedBlockedCB.capabilities().paths);
        assert!(SolverId::DirectedFloydWarshall2D.capabilities().paths);
    }
}
