//! Distributed Johnson: per-source Dijkstra over a broadcast CSR.
//!
//! The paper's §3 names Johnson's algorithm as the asymptotically better
//! choice for sparse graphs (`O(|V||E| + |V|² log |V|)`), then sets it
//! aside because blocked Floyd-Warshall has better computational density
//! on the dense matrices its pipelines produce. This solver makes that
//! trade-off measurable: it is embarrassingly parallel (sources are the
//! unit of work, the graph is broadcast once), has *no* shuffles and no
//! side channel (pure), and wins exactly where the paper predicts — very
//! sparse inputs — while losing ground as density grows.

use crate::solver::{validate_adjacency, ApspError, ApspResult, ApspSolver, SolverConfig};
use apsp_blockmat::{Matrix, INF};
use apsp_graph::{dijkstra, Csr, Graph};
use sparklet::SparkContext;
use std::time::Instant;

/// Pure, shuffle-free APSP: broadcast the CSR adjacency, run Dijkstra
/// from each source in parallel, collect distance rows.
///
/// `SolverConfig::block_size` is reinterpreted as the number of sources
/// per task (chunking granularity); the 2D decomposition does not apply.
#[derive(Debug, Default, Clone)]
pub struct DistributedJohnson;

impl ApspSolver for DistributedJohnson {
    fn name(&self) -> &'static str {
        "Distributed Johnson"
    }

    fn is_pure(&self) -> bool {
        true
    }

    fn solve(
        &self,
        ctx: &SparkContext,
        adjacency: &Matrix,
        cfg: &SolverConfig,
    ) -> Result<ApspResult, ApspError> {
        if cfg.track_paths {
            return Err(ApspError::InvalidConfig(
                "path tracking (with_paths) is not supported by distributed Johnson; use one of the six paper solvers".into(),
            ));
        }
        let n = adjacency.order();
        cfg.check(n)?;
        if cfg.validate_input {
            validate_adjacency(adjacency)?;
        }
        let start = Instant::now();
        let metrics_before = ctx.metrics();

        // Rebuild the sparse structure from the dense input (the paper's
        // pipelines hand us dense matrices; Johnson pays to sparsify).
        let mut g = Graph::new(n);
        for i in 0..n {
            for j in (i + 1)..n {
                let w = adjacency.get(i, j);
                if w.is_finite() {
                    g.add_edge(i as u32, j as u32, w);
                }
            }
        }
        let csr: Csr = g.to_csr();
        let bcast = ctx.broadcast(CsrHolder(std::sync::Arc::new(csr)));

        let sources: Vec<u32> = (0..n as u32).collect();
        let tasks = n.div_ceil(cfg.block_size.max(1));
        let rows = ctx
            .parallelize(sources, tasks.max(1))
            .map(move |s| {
                let dist = dijkstra::sssp(&bcast.value().0, s as usize);
                (s, dist)
            })
            .collect()?;

        let mut out = Matrix::filled(n, INF);
        for (s, dist) in rows {
            for (t, &d) in dist.iter().enumerate() {
                out.set(s as usize, t, d);
            }
        }
        let metrics = ctx.metrics().delta(&metrics_before);
        Ok(ApspResult::new(out, metrics, start.elapsed(), n as u64))
    }
}

/// Arc-wrapped CSR with a size estimate, so broadcasting it books the
/// right byte volume.
#[derive(Clone)]
struct CsrHolder(std::sync::Arc<Csr>);

impl sparklet::EstimateSize for CsrHolder {
    fn estimate_bytes(&self) -> usize {
        // offsets (8B) + per-arc target (4B) + weight (8B).
        8 * (self.0.order() + 1) + 12 * self.0.num_arcs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apsp_graph::{floyd_warshall as fw_oracle, generators};
    use sparklet::{SparkConfig, SparkContext};

    fn ctx() -> SparkContext {
        SparkContext::new(SparkConfig::with_cores(4))
    }

    #[test]
    fn matches_oracle() {
        let g = generators::erdos_renyi_paper(90, 0.1, 55);
        let res = DistributedJohnson
            .solve(&ctx(), &g.to_dense(), &SolverConfig::new(16))
            .unwrap();
        assert!(res.distances().approx_eq(&fw_oracle(&g), 1e-9).is_ok());
    }

    #[test]
    fn pure_and_shuffle_free() {
        let sc = ctx();
        let g = generators::erdos_renyi_paper(60, 0.1, 2);
        let res = DistributedJohnson
            .solve(&sc, &g.to_dense(), &SolverConfig::new(10))
            .unwrap();
        assert_eq!(res.metrics.shuffles, 0);
        assert_eq!(res.metrics.side_channel_writes, 0);
        assert!(res.metrics.broadcast_bytes > 0);
    }

    #[test]
    fn broadcast_volume_scales_with_edge_count() {
        // The §3 trade-off, deterministically: Johnson's cost scales with
        // |E| (visible in the CSR broadcast volume and its Dijkstra work),
        // while blocked FW's does not. A path graph vs a complete graph
        // of the same order makes the gap two orders of magnitude.
        let n = 220;
        let sparse = generators::path(n);
        let dense = generators::complete(n, 1);
        let run = |g: &apsp_graph::Graph| {
            let sc = SparkContext::new(SparkConfig::with_cores(4));
            DistributedJohnson
                .solve(
                    &sc,
                    &g.to_dense(),
                    &SolverConfig::new(n / 4).without_validation(),
                )
                .unwrap()
        };
        let rs = run(&sparse);
        let rd = run(&dense);
        assert!(
            rd.metrics.broadcast_bytes > 20 * rs.metrics.broadcast_bytes,
            "dense CSR broadcast {} should dwarf sparse {}",
            rd.metrics.broadcast_bytes,
            rs.metrics.broadcast_bytes
        );
        // Both still correct.
        assert!(rs.distances().approx_eq(&fw_oracle(&sparse), 1e-9).is_ok());
        assert!(rd.distances().approx_eq(&fw_oracle(&dense), 1e-9).is_ok());
    }

    #[test]
    fn disconnected() {
        let mut g = apsp_graph::Graph::new(7);
        g.add_edge(0, 1, 1.5);
        let res = DistributedJohnson
            .solve(&ctx(), &g.to_dense(), &SolverConfig::new(2))
            .unwrap();
        assert_eq!(res.distances().get(0, 1), 1.5);
        assert_eq!(res.distances().get(0, 6), INF);
    }
}
