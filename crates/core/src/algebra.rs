//! Generic path-algebra solves: the paper's solvers over any
//! [`PathAlgebra`], plus ready-made workloads for all-pairs
//! bottleneck/widest paths and boolean transitive closure.
//!
//! The paper frames APSP as matrix algebra over *(min, +)* (§2); the same
//! blocked dataflow solves other all-pairs path problems by swapping the
//! algebra. This module is the public surface of that generality:
//!
//! ```
//! use apsp_core::algebra::{widest_paths, transitive_closure};
//! use apsp_core::{BlockedCollectBroadcast, SolverConfig};
//! use apsp_graph::Graph;
//! use sparklet::{SparkConfig, SparkContext};
//!
//! // A thin pipe 0-2 and a fat two-hop route 0-1-2.
//! let g = Graph::from_edges(3, [(0, 1, 10.0), (1, 2, 7.0), (0, 2, 1.0)]);
//! let ctx = SparkContext::new(SparkConfig::with_cores(2));
//!
//! let wide = widest_paths(&ctx, &g, &BlockedCollectBroadcast, &SolverConfig::new(2)).unwrap();
//! assert_eq!(wide.get(0, 2), 7.0); // max-min through vertex 1
//!
//! let reach = transitive_closure(&ctx, &g, &BlockedCollectBroadcast, &SolverConfig::new(2)).unwrap();
//! assert!(reach.get(0, 2));
//! ```

use crate::engine::{self, AlgRun};
use crate::solver::{ApspError, SolverConfig};
use apsp_blockmat::algebra::Elem;
use apsp_blockmat::{ElemBlock, PathAlgebra};
use sparklet::{EstimateSize, MetricsSnapshot, SparkContext};
use std::time::{Duration, Instant};

pub use crate::engine::Stageable;
pub use apsp_blockmat::{
    BoolSemiring, BottleneckF64, Reachability, TrackedReachability, TrackedTropical, TrackedWidest,
    Tropical, Widest,
};

/// Outcome of a generic path-algebra solve: the dense `n × n` element
/// matrix (as a side-`n` [`ElemBlock`]) plus run metadata.
pub struct AlgebraResult<A: PathAlgebra> {
    values: ElemBlock<A::Semi>,
    payloads: Vec<A::Payload>,
    /// Engine-counter increments attributable to this solve.
    pub metrics: MetricsSnapshot,
    /// Wall-clock duration of the solve.
    pub elapsed: Duration,
    /// Outer iterations executed.
    pub iterations: u64,
}

impl<A: PathAlgebra> AlgebraResult<A> {
    /// The dense `n × n` result matrix.
    pub fn values(&self) -> &ElemBlock<A::Semi> {
        &self.values
    }

    /// Entry accessor.
    pub fn get(&self, i: usize, j: usize) -> Elem<A> {
        self.values.get(i, j)
    }

    /// The dense row-major `n × n` payload plane — the recorded vias for
    /// tracking algebras ([`TrackedTropical`],
    /// [`apsp_blockmat::TrackedWidest`],
    /// [`apsp_blockmat::TrackedReachability`]); zero-sized `()` cells
    /// otherwise.
    pub fn payloads(&self) -> &[A::Payload] {
        &self.payloads
    }

    /// Consumes the result, returning the dense matrix.
    pub fn into_values(self) -> ElemBlock<A::Semi> {
        self.values
    }

    /// Consumes the result, returning the dense matrix and payload plane.
    pub fn into_parts(self) -> (ElemBlock<A::Semi>, Vec<A::Payload>) {
        (self.values, self.payloads)
    }
}

/// The generic solve surface: implemented by every blocked Spark solver,
/// so any [`PathAlgebra`] runs through any of them.
///
/// `weight(i, j)` must be a **symmetric** element accessor with
/// `weight(i, i) = 1̄` (the multiplicative identity: `0` for tropical,
/// `+∞` for bottleneck, `true` for boolean) — the solvers store only the
/// upper block triangle and mirror by transposition (paper §4), which is
/// sound exactly for symmetric instances. Directed instances need the
/// full-grid solvers in [`crate::directed`].
pub trait AlgebraSolver {
    /// Solves the all-pairs path problem of algebra `A` over an
    /// `n`-vertex instance given by `weight`.
    fn solve_algebra<A: PathAlgebra>(
        &self,
        ctx: &SparkContext,
        n: usize,
        weight: &dyn Fn(usize, usize) -> Elem<A>,
        cfg: &SolverConfig,
    ) -> Result<AlgebraResult<A>, ApspError>
    where
        ElemBlock<A::Semi>: Stageable,
        Elem<A>: EstimateSize;
}

/// Input validation for the generic path (the algebra-aware counterpart
/// of `validate_adjacency`): the accessor must be symmetric — the engine
/// stores only the upper block triangle and mirrors by transposition —
/// and carry the multiplicative identity on the diagonal, or padding and
/// diagonal closure misbehave. Costs `O(n²)` like the tropical check.
fn validate_symmetric<A: PathAlgebra>(
    n: usize,
    weight: &dyn Fn(usize, usize) -> Elem<A>,
) -> Result<(), ApspError> {
    use apsp_blockmat::Semiring;
    for i in 0..n {
        if weight(i, i) != A::Semi::one() {
            return Err(ApspError::InvalidInput(format!(
                "weight({i},{i}) = {:?} is not the multiplicative identity {:?}",
                weight(i, i),
                A::Semi::one()
            )));
        }
        for j in (i + 1)..n {
            if weight(i, j) != weight(j, i) {
                return Err(ApspError::InvalidInput(format!(
                    "asymmetric weights: weight({i},{j}) = {:?} but weight({j},{i}) = {:?}; \
                     the blocked solvers store only the upper triangle — use the directed \
                     solvers for asymmetric instances",
                    weight(i, j),
                    weight(j, i)
                )));
            }
        }
    }
    Ok(())
}

/// Shared epilogue: collect, trim, and account.
fn finish<A: PathAlgebra>(
    ctx: &SparkContext,
    start: Instant,
    metrics_before: MetricsSnapshot,
    run: AlgRun<A>,
) -> Result<AlgebraResult<A>, ApspError> {
    let n = run.n;
    let (vals, pays) = run.collect_dense()?;
    let metrics = ctx.metrics().delta(&metrics_before);
    Ok(AlgebraResult {
        values: ElemBlock::from_vec(n, vals),
        payloads: pays,
        metrics,
        elapsed: start.elapsed(),
        iterations: run.iterations,
    })
}

macro_rules! impl_algebra_solver {
    ($solver:ty, $engine_fn:path) => {
        impl AlgebraSolver for $solver {
            fn solve_algebra<A: PathAlgebra>(
                &self,
                ctx: &SparkContext,
                n: usize,
                weight: &dyn Fn(usize, usize) -> Elem<A>,
                cfg: &SolverConfig,
            ) -> Result<AlgebraResult<A>, ApspError>
            where
                ElemBlock<A::Semi>: Stageable,
                Elem<A>: EstimateSize,
            {
                cfg.check(n)?;
                if cfg.validate_input {
                    validate_symmetric::<A>(n, weight)?;
                }
                let start = Instant::now();
                let metrics_before = ctx.metrics();
                let run = $engine_fn(ctx, n, weight, cfg)?;
                finish(ctx, start, metrics_before, run)
            }
        }
    };
}

impl_algebra_solver!(crate::BlockedCollectBroadcast, engine::solve_cb::<A>);
impl_algebra_solver!(crate::BlockedInMemory, engine::solve_im::<A>);
impl_algebra_solver!(crate::FloydWarshall2D, engine::solve_fw2d::<A>);
impl_algebra_solver!(crate::RepeatedSquaring, engine::solve_rs::<A>);

/// All-pairs **widest (bottleneck) paths** over an undirected
/// capacity-weighted graph: entry `(i, j)` of the result is the largest
/// capacity `c` such that some `i → j` route uses only edges of capacity
/// `≥ c` (`0.0` if unreachable, `+∞` on the diagonal).
///
/// Edge weights are read as capacities; parallel edges keep the fattest.
/// Cross-validate against [`apsp_graph::bottleneck::widest_paths`].
pub fn widest_paths<S: AlgebraSolver>(
    ctx: &SparkContext,
    g: &apsp_graph::Graph,
    solver: &S,
    cfg: &SolverConfig,
) -> Result<AlgebraResult<Widest>, ApspError> {
    let caps = g.to_dense_capacities();
    solver.solve_algebra::<Widest>(ctx, g.order(), &|i, j| caps.get(i, j), cfg)
}

/// All-pairs **reachability** (boolean transitive closure) over an
/// undirected graph: entry `(i, j)` is `true` iff `i` and `j` are in the
/// same connected component (the diagonal is always `true`).
///
/// Cross-validate against [`apsp_graph::bottleneck::reachability_bfs`].
pub fn transitive_closure<S: AlgebraSolver>(
    ctx: &SparkContext,
    g: &apsp_graph::Graph,
    solver: &S,
    cfg: &SolverConfig,
) -> Result<AlgebraResult<Reachability>, ApspError> {
    let n = g.order();
    let adj = boolean_adjacency(g);
    solver.solve_algebra::<Reachability>(ctx, n, &|i, j| adj[i * n + j], cfg)
}

/// Dense symmetric boolean adjacency (diagonal `true`) of an undirected
/// graph — the *(∨, ∧)* input convention shared by
/// [`transitive_closure`] and the planner's reachability execution
/// (`crate::plan`).
pub(crate) fn boolean_adjacency(g: &apsp_graph::Graph) -> Vec<bool> {
    let n = g.order();
    let mut adj = vec![false; n * n];
    for (u, v, _) in g.edges() {
        let (u, v) = (u as usize, v as usize);
        adj[u * n + v] = true;
        adj[v * n + u] = true;
    }
    for i in 0..n {
        adj[i * n + i] = true;
    }
    adj
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BlockedCollectBroadcast, BlockedInMemory, FloydWarshall2D, RepeatedSquaring};
    use apsp_graph::Graph;
    use sparklet::SparkConfig;

    fn ctx() -> SparkContext {
        SparkContext::new(SparkConfig::with_cores(4))
    }

    fn pipes() -> Graph {
        // 0 -10- 1 -7- 2 -4- 3, plus thin shortcuts 0-2 (1) and 1-3 (2).
        Graph::from_edges(
            4,
            [
                (0, 1, 10.0),
                (1, 2, 7.0),
                (2, 3, 4.0),
                (0, 2, 1.0),
                (1, 3, 2.0),
            ],
        )
    }

    #[test]
    fn widest_paths_agree_across_all_four_solvers() {
        let g = pipes();
        let cfg = SolverConfig::new(2);
        let sc = ctx();
        let reference = widest_paths(&sc, &g, &BlockedCollectBroadcast, &cfg).unwrap();
        assert_eq!(reference.get(0, 2), 7.0);
        assert_eq!(reference.get(0, 3), 4.0);
        assert_eq!(reference.get(0, 0), f64::INFINITY);
        for (vals, name) in [
            (widest_paths(&sc, &g, &BlockedInMemory, &cfg).unwrap(), "IM"),
            (
                widest_paths(&sc, &g, &FloydWarshall2D, &cfg).unwrap(),
                "FW2D",
            ),
            (
                widest_paths(&sc, &g, &RepeatedSquaring, &cfg).unwrap(),
                "RS",
            ),
        ] {
            for i in 0..4 {
                for j in 0..4 {
                    assert_eq!(vals.get(i, j), reference.get(i, j), "{name} ({i},{j})");
                }
            }
        }
    }

    #[test]
    fn transitive_closure_finds_components() {
        let mut g = Graph::new(6);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 2, 1.0);
        g.add_edge(4, 5, 1.0);
        let sc = ctx();
        for solver in ["cb", "im", "fw2d", "rs"] {
            let r = match solver {
                "cb" => {
                    transitive_closure(&sc, &g, &BlockedCollectBroadcast, &SolverConfig::new(2))
                }
                "im" => transitive_closure(&sc, &g, &BlockedInMemory, &SolverConfig::new(2)),
                "fw2d" => transitive_closure(&sc, &g, &FloydWarshall2D, &SolverConfig::new(2)),
                _ => transitive_closure(&sc, &g, &RepeatedSquaring, &SolverConfig::new(2)),
            }
            .unwrap();
            assert!(r.get(0, 2), "{solver}");
            assert!(!r.get(0, 3), "{solver}");
            assert!(!r.get(2, 4), "{solver}");
            assert!(r.get(4, 5), "{solver}");
            assert!(r.get(3, 3), "{solver}");
        }
    }

    #[test]
    fn rejects_asymmetric_or_bad_diagonal_input() {
        let sc = ctx();
        // Asymmetric accessor: upper-triangle mirroring would silently
        // drop the lower half, so it must be rejected up front.
        let err = BlockedCollectBroadcast
            .solve_algebra::<Widest>(
                &sc,
                3,
                &|i, j| {
                    if i == j {
                        f64::INFINITY
                    } else if (i, j) == (0, 1) {
                        5.0
                    } else {
                        0.0
                    }
                },
                &SolverConfig::new(2),
            )
            .map(|_| ())
            .unwrap_err();
        assert!(matches!(err, ApspError::InvalidInput(_)));

        // Wrong diagonal (must be the multiplicative identity).
        let err = BlockedInMemory
            .solve_algebra::<Widest>(&sc, 2, &|_, _| 1.0, &SolverConfig::new(2))
            .map(|_| ())
            .unwrap_err();
        assert!(matches!(err, ApspError::InvalidInput(_)));

        // without_validation() opts out, as on the tropical path.
        assert!(BlockedInMemory
            .solve_algebra::<Widest>(
                &sc,
                2,
                &|i, j| if i == j { f64::INFINITY } else { 1.0 },
                &SolverConfig::new(2).without_validation(),
            )
            .is_ok());
    }

    #[test]
    fn rejects_zero_block_size() {
        let g = pipes();
        let err = widest_paths(&ctx(), &g, &BlockedCollectBroadcast, &SolverConfig::new(0))
            .map(|_| ())
            .unwrap_err();
        assert!(matches!(err, ApspError::InvalidConfig(_)));
    }
}
