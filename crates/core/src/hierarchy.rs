//! Hierarchical sparse APSP: partition → local-solve → boundary-stitch.
//!
//! Every dense solver in this workspace materializes the full `n × n`
//! closure, which is the right trade on the paper's dense instances but
//! pays `Θ(n³)` work and `Θ(n²)` memory on road-like graphs whose
//! adjacency is overwhelmingly `INF`. This module implements the
//! disassembly/assembly scheme of the sparse-APSP line of work
//! (Urakov–Timeryaev; H3-style hierarchical partitioning):
//!
//! 1. **Partition** — BFS region growing over the [`Csr`] carves the
//!    vertex set into connected parts of roughly
//!    [`crate::tuner::hierarchical_part_size`] vertices each;
//! 2. **Local solve** — each part's induced subgraph is closed with the
//!    existing dense blocked engine ([`AlgClosure`] /
//!    [`TrackedClosure`]), all parts in parallel on the sparklet pool;
//! 3. **Skeleton** — the endpoints of cut edges form a coarse boundary
//!    graph whose edges are cut edges plus per-part boundary-to-boundary
//!    local distances; one dense [`BlockedCollectBroadcast`] solve closes
//!    it. Because every inter-part path must cross the boundary at cut
//!    edges, the skeleton closure equals the true global distances
//!    between boundary vertices;
//! 4. **Stitch** — point queries evaluate
//!    `dist(u, v) = min(local(u, v), min over boundary pairs
//!    local(u, bᵤ) + skeleton(bᵤ, bᵥ) + local(bᵥ, v))`
//!    lazily, so the full `n × n` matrix is never allocated. The
//!    same-part `local(u, v)` term is exact even when the witness path
//!    leaves the part: its first-exit/last-entry prefix and suffix are
//!    part-internal and the middle decomposes into skeleton edges, so
//!    the boundary-pair minimum covers it.
//!
//! Path witnesses compose the same way: a local via plane per part plus
//! the skeleton's parent matrix, with each skeleton hop resolved through
//! a provenance map back to either a cut edge or a part-internal
//! expansion.
//!
//! [`Csr`]: apsp_graph::Csr

use std::collections::{HashMap, VecDeque};

use apsp_blockmat::closure::{AlgClosure, TrackedClosure};
use apsp_blockmat::kernels::MinPlusKernel;
use apsp_blockmat::{Matrix, Tropical, INF, NO_VIA};
use apsp_graph::paths::{expand_vias_with, NodeId, ParentMatrix};
use apsp_graph::Graph;
use sparklet::{MetricsSnapshot, SparkContext};

use crate::solver::{ApspError, ApspSolver, SolverConfig};
use crate::{tuner, BlockedCollectBroadcast};

/// Configuration for [`HierarchicalClosure::solve`].
#[derive(Clone, Debug, Default)]
pub struct HierarchyConfig {
    /// Target vertices per partition; `None` defers to
    /// [`crate::tuner::hierarchical_part_size`].
    pub target_part_size: Option<usize>,
    /// Record local via planes and the skeleton parent matrix so
    /// [`HierarchicalClosure::path`] can reconstruct witness routes.
    pub track_paths: bool,
}

impl HierarchyConfig {
    /// Enables path-witness tracking.
    pub fn with_paths(mut self) -> Self {
        self.track_paths = true;
        self
    }

    /// Pins the target partition size (mostly for tests; the tuner's
    /// cost-model default is the right choice for real inputs).
    pub fn with_target_part_size(mut self, m: usize) -> Self {
        self.target_part_size = Some(m);
        self
    }
}

/// Shape of a solved hierarchy — how the partitioner carved the graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HierarchyStats {
    /// Number of partitions.
    pub parts: usize,
    /// Target vertices per partition the partitioner aimed for.
    pub target_part_size: usize,
    /// Vertices of the largest partition actually produced.
    pub largest_part: usize,
    /// Boundary (skeleton) vertices: endpoints of cut edges.
    pub boundary_vertices: usize,
    /// Distinct cut-edge pairs crossing between partitions.
    pub cut_edges: usize,
}

/// Where a skeleton adjacency entry came from — needed to expand a
/// skeleton hop back into concrete input-graph vertices.
#[derive(Clone, Copy, Debug)]
enum SkelSrc {
    /// A cut edge of the input graph: the hop is a direct edge.
    Cut,
    /// A boundary-to-boundary shortest path inside this part.
    Local(u32),
}

/// One partition's solved state.
struct Part {
    /// Global vertex ids of this part, sorted ascending; position is the
    /// part-local index.
    verts: Vec<u32>,
    /// Local `m × m` closure (distances within the induced subgraph).
    dist: Matrix,
    /// Flat `m × m` via plane in part-local ids ([`NO_VIA`] for direct
    /// or unreachable cells); present only under path tracking.
    via: Option<Vec<u32>>,
    /// Part-local indices of this part's boundary vertices, sorted.
    boundary: Vec<u32>,
}

/// A solved hierarchical closure: per-part local closures plus the
/// boundary skeleton, serving exact distance/path point queries without
/// ever allocating the `n × n` matrix.
pub struct HierarchicalClosure {
    n: usize,
    /// Global vertex id → partition id.
    part_of: Vec<u32>,
    /// Global vertex id → index within its partition's `verts`.
    local_of: Vec<u32>,
    parts: Vec<Part>,
    /// Global ids of the boundary vertices, sorted ascending; position is
    /// the skeleton index.
    skel_verts: Vec<u32>,
    /// Global vertex id → skeleton index, `u32::MAX` for interior vertices.
    skel_of: Vec<u32>,
    /// `s × s` closure of the boundary skeleton.
    skel_dist: Matrix,
    /// Skeleton parent matrix (path tracking only).
    skel_parents: Option<ParentMatrix>,
    /// Provenance of each finite skeleton adjacency entry, keyed by the
    /// unordered skeleton-index pair.
    skel_prov: HashMap<(u32, u32), SkelSrc>,
    stats: HierarchyStats,
    track: bool,
    /// Engine counters of the skeleton solve (the only distributed stage
    /// whose metrics are observable; local solves run in-task).
    pub(crate) skeleton_metrics: MetricsSnapshot,
    /// Outer iterations of the skeleton solve.
    pub(crate) skeleton_iterations: u64,
}

/// What one parallel local-solve task ships to the pool: the part's
/// induced subgraph in part-local ids.
#[derive(Clone)]
struct LocalTask {
    part: usize,
    m: usize,
    edges: Vec<(u32, u32, f64)>,
    track: bool,
}

fn solve_local(task: LocalTask) -> (usize, Matrix, Option<Vec<u32>>) {
    let m = task.m;
    let b = tuner::suggest_block_size(m, 1, 2).clamp(1, m);
    let mut adj = Matrix::identity(m);
    for &(lu, lv, w) in &task.edges {
        let (lu, lv) = (lu as usize, lv as usize);
        if w < adj.get(lu, lv) {
            adj.set(lu, lv, w);
            adj.set(lv, lu, w);
        }
    }
    if task.track {
        let mut tc = TrackedClosure::from_matrix(&adj, b);
        tc.closure_in_place(MinPlusKernel::Auto);
        let (dist, via) = tc.into_parts();
        (task.part, dist, Some(via))
    } else {
        let mut c = AlgClosure::<Tropical>::from_fn(m, b, |i, j| adj.get(i, j));
        c.closure_in_place(MinPlusKernel::Auto);
        let (dist, _) = c.into_dense();
        (task.part, Matrix::from_vec(m, dist.data().to_vec()), None)
    }
}

impl HierarchicalClosure {
    /// Partitions `g`, closes every part in parallel, closes the boundary
    /// skeleton, and returns the lazily-queryable hierarchy.
    pub fn solve(sc: &SparkContext, g: &Graph, cfg: &HierarchyConfig) -> Result<Self, ApspError> {
        let n = g.order();
        if n == 0 {
            return Err(ApspError::InvalidInput("empty graph".into()));
        }
        let target = cfg
            .target_part_size
            .unwrap_or_else(|| tuner::hierarchical_part_size(n))
            .max(1);
        let track = cfg.track_paths;

        // 1. BFS region growing: each seed grows a connected part,
        // assigning on push until the part holds `target` vertices; the
        // next unassigned vertex seeds the next part. Isolated vertices
        // become singleton parts, so disconnected inputs need no special
        // casing anywhere downstream.
        let csr = g.to_csr();
        let mut part_of = vec![u32::MAX; n];
        let mut part_verts: Vec<Vec<u32>> = Vec::new();
        for seed in 0..n {
            if part_of[seed] != u32::MAX {
                continue;
            }
            let pid = part_verts.len() as u32;
            let mut verts = Vec::new();
            let mut queue = VecDeque::new();
            part_of[seed] = pid;
            queue.push_back(seed as u32);
            let mut count = 1usize;
            while let Some(u) = queue.pop_front() {
                verts.push(u);
                for (v, _) in csr.neighbors(u as usize) {
                    if part_of[v as usize] == u32::MAX && count < target {
                        part_of[v as usize] = pid;
                        count += 1;
                        queue.push_back(v);
                    }
                }
            }
            verts.sort_unstable();
            part_verts.push(verts);
        }
        let num_parts = part_verts.len();
        let mut local_of = vec![0u32; n];
        for verts in &part_verts {
            for (lv, &v) in verts.iter().enumerate() {
                local_of[v as usize] = lv as u32;
            }
        }

        // 2. Classify edges: internal edges feed the local solves, cut
        // edges define the boundary.
        let mut internal: Vec<Vec<(u32, u32, f64)>> = vec![Vec::new(); num_parts];
        let mut cut: Vec<(u32, u32, f64)> = Vec::new();
        let mut is_boundary = vec![false; n];
        for (u, v, w) in g.edges() {
            if u == v {
                continue;
            }
            let (pu, pv) = (part_of[u as usize], part_of[v as usize]);
            if pu == pv {
                internal[pu as usize].push((local_of[u as usize], local_of[v as usize], w));
            } else {
                is_boundary[u as usize] = true;
                is_boundary[v as usize] = true;
                cut.push((u, v, w));
            }
        }

        // 3. Local closures, all parts in parallel on the pool.
        let tasks: Vec<LocalTask> = internal
            .into_iter()
            .enumerate()
            .map(|(part, edges)| LocalTask {
                part,
                m: part_verts[part].len(),
                edges,
                track,
            })
            .collect();
        let solved = sc
            .parallelize(tasks, num_parts.max(1))
            .map(solve_local)
            .collect()?;
        let mut parts: Vec<Option<Part>> = (0..num_parts).map(|_| None).collect();
        for (pid, dist, via) in solved {
            let verts = std::mem::take(&mut part_verts[pid]);
            let boundary: Vec<u32> = verts
                .iter()
                .enumerate()
                .filter(|&(_, &v)| is_boundary[v as usize])
                .map(|(lv, _)| lv as u32)
                .collect();
            parts[pid] = Some(Part {
                verts,
                dist,
                via,
                boundary,
            });
        }
        let parts: Vec<Part> = parts
            .into_iter()
            .map(|p| {
                p.ok_or_else(|| {
                    ApspError::InvalidInput(
                        "hierarchy invariant: a partition's local closure is missing".into(),
                    )
                })
            })
            .collect::<Result<_, _>>()?;

        // 4. Skeleton adjacency over boundary vertices: per-part
        // boundary-to-boundary local distances plus cut edges, minimum
        // wins, provenance recorded for path expansion.
        let skel_verts: Vec<u32> = (0..n as u32).filter(|&v| is_boundary[v as usize]).collect();
        let s = skel_verts.len();
        let mut skel_of = vec![u32::MAX; n];
        for (si, &v) in skel_verts.iter().enumerate() {
            skel_of[v as usize] = si as u32;
        }
        let mut skel_adj = Matrix::identity(s);
        let mut skel_prov: HashMap<(u32, u32), SkelSrc> = HashMap::new();
        for (pid, part) in parts.iter().enumerate() {
            for (a, &bl_a) in part.boundary.iter().enumerate() {
                let sa = skel_of[part.verts[bl_a as usize] as usize];
                for &bl_b in part.boundary.iter().skip(a + 1) {
                    let d = part.dist.get(bl_a as usize, bl_b as usize);
                    if !d.is_finite() {
                        continue;
                    }
                    let sb = skel_of[part.verts[bl_b as usize] as usize];
                    if d < skel_adj.get(sa as usize, sb as usize) {
                        skel_adj.set(sa as usize, sb as usize, d);
                        skel_adj.set(sb as usize, sa as usize, d);
                        skel_prov.insert((sa.min(sb), sa.max(sb)), SkelSrc::Local(pid as u32));
                    }
                }
            }
        }
        let mut cut_pairs: Vec<(u32, u32)> = Vec::with_capacity(cut.len());
        for &(u, v, w) in &cut {
            let (su, sv) = (skel_of[u as usize], skel_of[v as usize]);
            cut_pairs.push((su.min(sv), su.max(sv)));
            if w < skel_adj.get(su as usize, sv as usize) {
                skel_adj.set(su as usize, sv as usize, w);
                skel_adj.set(sv as usize, su as usize, w);
                skel_prov.insert((su.min(sv), su.max(sv)), SkelSrc::Cut);
            }
        }
        cut_pairs.sort_unstable();
        cut_pairs.dedup();

        // 5. Close the skeleton with the dense distributed engine. A
        // single-part (or edgeless) input has no cut edges: s = 0 and
        // the skeleton stage vanishes.
        let (skel_dist, skel_parents, skeleton_metrics, skeleton_iterations) = if s == 0 {
            (Matrix::identity(0), None, MetricsSnapshot::default(), 0)
        } else {
            let b = tuner::suggest_block_size(s, sc.num_cores(), 2).clamp(1, s);
            let mut scfg = SolverConfig::new(b).without_validation();
            if track {
                scfg = scfg.with_paths();
            }
            let res = BlockedCollectBroadcast.solve(sc, &skel_adj, &scfg)?;
            let metrics = res.metrics;
            let iterations = res.iterations;
            let (dist, parents) = res.into_distances_and_parents();
            (dist, parents, metrics, iterations)
        };

        let stats = HierarchyStats {
            parts: num_parts,
            target_part_size: target,
            largest_part: parts.iter().map(|p| p.verts.len()).fold(0, usize::max),
            boundary_vertices: s,
            cut_edges: cut_pairs.len(),
        };
        Ok(HierarchicalClosure {
            n,
            part_of,
            local_of,
            parts,
            skel_verts,
            skel_of,
            skel_dist,
            skel_parents,
            skel_prov,
            stats,
            track,
            skeleton_metrics,
            skeleton_iterations,
        })
    }

    /// Number of vertices of the solved instance.
    pub fn order(&self) -> usize {
        self.n
    }

    /// Whether path witnesses were tracked.
    pub fn tracks_paths(&self) -> bool {
        self.track
    }

    /// How the partitioner carved the graph.
    pub fn stats(&self) -> HierarchyStats {
        self.stats
    }

    /// Exact shortest-path distance `u → v` ([`INF`] when unreachable).
    ///
    /// Evaluates the stitch rule lazily in
    /// `O(|boundary(u)| · |boundary(v)|)`; no `n × n` state exists.
    /// Callers own the bounds check (`u, v < n`), matching the dense
    /// matrix accessors.
    pub fn dist(&self, u: usize, v: usize) -> f64 {
        if u == v {
            return 0.0;
        }
        let (pu, pv) = (self.part_of[u] as usize, self.part_of[v] as usize);
        let (lu, lv) = (self.local_of[u] as usize, self.local_of[v] as usize);
        let mut best = if pu == pv {
            self.parts[pu].dist.get(lu, lv)
        } else {
            INF
        };
        for &bu in &self.parts[pu].boundary {
            let du = self.parts[pu].dist.get(lu, bu as usize);
            if !du.is_finite() {
                continue;
            }
            let su = self.skel_of[self.parts[pu].verts[bu as usize] as usize] as usize;
            for &bv in &self.parts[pv].boundary {
                let dv = self.parts[pv].dist.get(bv as usize, lv);
                if !dv.is_finite() {
                    continue;
                }
                let sv = self.skel_of[self.parts[pv].verts[bv as usize] as usize] as usize;
                let ds = self.skel_dist.get(su, sv);
                if ds.is_finite() {
                    let cand = du + ds + dv;
                    if cand < best {
                        best = cand;
                    }
                }
            }
        }
        best
    }

    /// One full distance row `dist(u, ·)` — the bulk query behind
    /// `k_nearest` and row-level verification, amortizing the skeleton
    /// relaxation across all `n` targets
    /// (`O(s · |boundary(u)| + Σ_p |boundary(p)| · |p|)`).
    pub fn row(&self, u: usize) -> Result<Vec<f64>, ApspError> {
        if u >= self.n {
            return Err(ApspError::InvalidInput(format!(
                "vertex {u} out of range for order {}",
                self.n
            )));
        }
        let mut out = vec![INF; self.n];
        let pu = self.part_of[u] as usize;
        let lu = self.local_of[u] as usize;
        let part_u = &self.parts[pu];
        for (lv, &gv) in part_u.verts.iter().enumerate() {
            out[gv as usize] = part_u.dist.get(lu, lv);
        }
        let s = self.skel_verts.len();
        if s > 0 {
            // d_sk[t]: best distance from `u` to skeleton vertex `t`
            // through u's own boundary. Same association order
            // ((du + ds) + dv) as `dist`, so the two agree bit-for-bit.
            let mut d_sk = vec![INF; s];
            for &bu in &part_u.boundary {
                let du = part_u.dist.get(lu, bu as usize);
                if !du.is_finite() {
                    continue;
                }
                let su = self.skel_of[part_u.verts[bu as usize] as usize] as usize;
                for (t, slot) in d_sk.iter_mut().enumerate() {
                    let cand = du + self.skel_dist.get(su, t);
                    if cand < *slot {
                        *slot = cand;
                    }
                }
            }
            for part in &self.parts {
                for &bl in &part.boundary {
                    let sb = self.skel_of[part.verts[bl as usize] as usize] as usize;
                    let db = d_sk[sb];
                    if !db.is_finite() {
                        continue;
                    }
                    for (lv, &gv) in part.verts.iter().enumerate() {
                        let cand = db + part.dist.get(bl as usize, lv);
                        if cand < out[gv as usize] {
                            out[gv as usize] = cand;
                        }
                    }
                }
            }
        }
        out[u] = 0.0;
        Ok(out)
    }

    /// A witness shortest path `u → v` as global vertex ids, stitched
    /// from the local via planes and the skeleton parent matrix.
    ///
    /// `Ok(None)` when tracking was off or the pair is unreachable.
    pub fn path(&self, u: usize, v: usize) -> Result<Option<Vec<NodeId>>, ApspError> {
        if u >= self.n || v >= self.n {
            return Err(ApspError::InvalidInput(format!(
                "vertex pair ({u}, {v}) out of range for order {}",
                self.n
            )));
        }
        if !self.track {
            return Ok(None);
        }
        if u == v {
            return Ok(Some(vec![u as NodeId]));
        }
        // Re-run the stitch minimization, remembering the argmin route.
        let (pu, pv) = (self.part_of[u] as usize, self.part_of[v] as usize);
        let (lu, lv) = (self.local_of[u] as usize, self.local_of[v] as usize);
        let mut best = if pu == pv {
            self.parts[pu].dist.get(lu, lv)
        } else {
            INF
        };
        // `None` = part-internal route (only possible when pu == pv);
        // `Some((bu, bv))` = cross route through those boundary locals.
        let mut route: Option<(u32, u32)> = None;
        for &bu in &self.parts[pu].boundary {
            let du = self.parts[pu].dist.get(lu, bu as usize);
            if !du.is_finite() {
                continue;
            }
            let su = self.skel_of[self.parts[pu].verts[bu as usize] as usize] as usize;
            for &bv in &self.parts[pv].boundary {
                let dv = self.parts[pv].dist.get(bv as usize, lv);
                if !dv.is_finite() {
                    continue;
                }
                let sv = self.skel_of[self.parts[pv].verts[bv as usize] as usize] as usize;
                let ds = self.skel_dist.get(su, sv);
                if ds.is_finite() {
                    let cand = du + ds + dv;
                    if cand < best {
                        best = cand;
                        route = Some((bu, bv));
                    }
                }
            }
        }
        if !best.is_finite() {
            return Ok(None);
        }
        match route {
            None => Ok(Some(self.local_path(pu, lu, lv)?)),
            Some((bu, bv)) => {
                let gu = self.parts[pu].verts[bu as usize];
                let gv = self.parts[pv].verts[bv as usize];
                let mut out = self.local_path(pu, lu, bu as usize)?;
                let skel = self.skel_path(
                    self.skel_of[gu as usize] as usize,
                    self.skel_of[gv as usize] as usize,
                )?;
                out.extend_from_slice(&skel[1..]);
                let tail = self.local_path(pv, bv as usize, lv)?;
                out.extend_from_slice(&tail[1..]);
                Ok(Some(out))
            }
        }
    }

    /// Expands a part-internal shortest path `from → to` (part-local
    /// indices) into global vertex ids via the part's via plane.
    fn local_path(&self, p: usize, from: usize, to: usize) -> Result<Vec<NodeId>, ApspError> {
        let part = &self.parts[p];
        let m = part.verts.len();
        let via = part.via.as_ref().ok_or_else(|| {
            ApspError::InvalidInput(
                "hierarchy invariant: path tracking on but local via plane missing".into(),
            )
        })?;
        let local = expand_vias_with(from, to, m, |a, b| match via[a * m + b] {
            NO_VIA => Ok::<Option<NodeId>, ApspError>(None),
            k => Ok(Some(k)),
        })?
        .ok_or_else(|| {
            ApspError::InvalidInput(
                "hierarchy invariant: local via expansion exceeded its budget".into(),
            )
        })?;
        Ok(local
            .into_iter()
            .map(|lv| part.verts[lv as usize])
            .collect())
    }

    /// Expands a skeleton shortest path `su → sv` (skeleton indices)
    /// into global vertex ids: the skeleton parent matrix yields the hop
    /// sequence, and each hop — by construction a finite skeleton
    /// adjacency entry — resolves through its provenance to either a cut
    /// edge or a part-internal expansion.
    fn skel_path(&self, su: usize, sv: usize) -> Result<Vec<NodeId>, ApspError> {
        let s = self.skel_verts.len();
        let pm = self.skel_parents.as_ref().ok_or_else(|| {
            ApspError::InvalidInput(
                "hierarchy invariant: path tracking on but skeleton parents missing".into(),
            )
        })?;
        let hops = expand_vias_with(su, sv, s, |a, b| Ok::<_, ApspError>(pm.via(a, b)))?
            .ok_or_else(|| {
                ApspError::InvalidInput(
                    "hierarchy invariant: skeleton via expansion exceeded its budget".into(),
                )
            })?;
        let first = hops.first().ok_or_else(|| {
            ApspError::InvalidInput("hierarchy invariant: empty skeleton expansion".into())
        })?;
        let mut out = vec![self.skel_verts[*first as usize]];
        for win in hops.windows(2) {
            let (a, b) = (win[0], win[1]);
            let src = self
                .skel_prov
                .get(&(a.min(b), a.max(b)))
                .copied()
                .ok_or_else(|| {
                    ApspError::InvalidInput(
                        "hierarchy invariant: skeleton edge without provenance".into(),
                    )
                })?;
            let (ga, gb) = (self.skel_verts[a as usize], self.skel_verts[b as usize]);
            match src {
                SkelSrc::Cut => out.push(gb),
                SkelSrc::Local(p) => {
                    let seg = self.local_path(
                        p as usize,
                        self.local_of[ga as usize] as usize,
                        self.local_of[gb as usize] as usize,
                    )?;
                    out.extend_from_slice(&seg[1..]);
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apsp_graph::{dijkstra, generators};
    use sparklet::SparkConfig;

    fn ctx() -> SparkContext {
        SparkContext::new(SparkConfig::with_cores(2))
    }

    fn assert_matches_dijkstra(g: &Graph, cfg: &HierarchyConfig, tol: f64) {
        let sc = ctx();
        let h = HierarchicalClosure::solve(&sc, g, cfg).expect("solve");
        let oracle = dijkstra::apsp_dijkstra(g);
        let n = g.order();
        for u in 0..n {
            let row = h.row(u).expect("row");
            for (v, &got) in row.iter().enumerate() {
                let want = oracle.get(u, v);
                if want.is_infinite() {
                    assert!(got.is_infinite(), "({u},{v}) reachable only in hierarchy");
                } else {
                    assert!(
                        (got - want).abs() <= tol,
                        "({u},{v}): hierarchy {got} vs Dijkstra {want}"
                    );
                }
                assert_eq!(h.dist(u, v), got, "dist/row disagree at ({u},{v})");
            }
        }
    }

    #[test]
    fn grid_matches_dijkstra_exactly() {
        let g = generators::grid(9, 7);
        let cfg = HierarchyConfig::default().with_target_part_size(10);
        assert_matches_dijkstra(&g, &cfg, 0.0);
    }

    #[test]
    fn road_grid_bit_equal_dijkstra() {
        // Dyadic weights: every path length is exact in f64, so the
        // hierarchy must agree bit-for-bit.
        let g = generators::road_grid(8, 9, 3);
        let cfg = HierarchyConfig::default().with_target_part_size(12);
        assert_matches_dijkstra(&g, &cfg, 0.0);
    }

    #[test]
    fn single_partition_degenerate_case() {
        // target ≥ n: one part, no boundary, no skeleton stage.
        let g = generators::grid(5, 5);
        let sc = ctx();
        let cfg = HierarchyConfig::default().with_target_part_size(100);
        let h = HierarchicalClosure::solve(&sc, &g, &cfg).expect("solve");
        let st = h.stats();
        assert_eq!(st.parts, 1);
        assert_eq!(st.boundary_vertices, 0);
        assert_eq!(st.cut_edges, 0);
        assert_matches_dijkstra(&g, &cfg, 0.0);
    }

    #[test]
    fn disconnected_components_stay_unreachable() {
        let mut g = Graph::new(9);
        for i in 0..3u32 {
            g.add_edge(3 * i, 3 * i + 1, 1.0);
            g.add_edge(3 * i + 1, 3 * i + 2, 2.0);
        }
        let cfg = HierarchyConfig::default().with_target_part_size(2);
        assert_matches_dijkstra(&g, &cfg, 0.0);
    }

    #[test]
    fn isolated_vertices_form_singleton_parts() {
        let mut g = Graph::new(5);
        g.add_edge(0, 1, 1.0);
        let sc = ctx();
        let cfg = HierarchyConfig::default().with_target_part_size(2);
        let h = HierarchicalClosure::solve(&sc, &g, &cfg).expect("solve");
        assert!(h.stats().parts >= 4, "stats: {:?}", h.stats());
        assert_eq!(h.dist(0, 1), 1.0);
        assert!(h.dist(0, 4).is_infinite());
    }

    #[test]
    fn paths_are_valid_witnesses() {
        let g = generators::road_grid(7, 7, 11);
        let sc = ctx();
        let cfg = HierarchyConfig::default()
            .with_paths()
            .with_target_part_size(9);
        let h = HierarchicalClosure::solve(&sc, &g, &cfg).expect("solve");
        let adj = g.to_dense();
        let n = g.order();
        for u in (0..n).step_by(5) {
            for v in (0..n).step_by(7) {
                let d = h.dist(u, v);
                let path = h.path(u, v).expect("path query");
                if d.is_infinite() {
                    assert!(path.is_none());
                    continue;
                }
                let path = path.expect("reachable pair must yield a path");
                assert_eq!(path[0] as usize, u);
                assert_eq!(*path.last().expect("non-empty") as usize, v);
                let mut len = 0.0;
                for w in path.windows(2) {
                    let hop = adj.get(w[0] as usize, w[1] as usize);
                    assert!(hop.is_finite(), "non-edge {}-{} in path", w[0], w[1]);
                    len += hop;
                }
                // Dyadic weights: the witness length is exactly the distance.
                assert_eq!(len, d, "path length mismatch for ({u},{v})");
            }
        }
    }

    #[test]
    fn untracked_hierarchy_returns_no_paths() {
        let g = generators::grid(4, 4);
        let sc = ctx();
        let h = HierarchicalClosure::solve(&sc, &g, &HierarchyConfig::default()).expect("solve");
        assert!(h.path(0, 15).expect("query").is_none());
        assert!(!h.tracks_paths());
    }

    #[test]
    fn empty_graph_is_rejected() {
        let sc = ctx();
        let err = HierarchicalClosure::solve(&sc, &Graph::new(0), &HierarchyConfig::default());
        assert!(err.is_err());
    }

    #[test]
    fn row_rejects_out_of_range() {
        let g = generators::grid(3, 3);
        let sc = ctx();
        let h = HierarchicalClosure::solve(&sc, &g, &HierarchyConfig::default()).expect("solve");
        assert!(h.row(9).is_err());
        assert!(h.path(0, 9).is_err());
    }
}
