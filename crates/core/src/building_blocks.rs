//! The paper's Table 1: functional building blocks shared by the solvers.
//!
//! Each function operates on keyed block records (or pieces thereof) and
//! is passed to `sparklet` transformations, mirroring how the paper
//! passes them to Spark transformations. Since the solver skeletons are
//! generic over a [`PathAlgebra`] (see `crate::engine`), the building
//! blocks are too: the compute-heavy ones delegate to the algebra's
//! kernel hooks in `apsp-blockmat` — the analogue of the paper's
//! NumPy/SciPy/Numba bare-metal offload — and the plain-APSP versions are
//! the [`apsp_blockmat::Tropical`] instantiations.

use crate::blocks::{canonical, BlockKey};
use apsp_blockmat::kernels::MinPlusKernel;
use apsp_blockmat::{AlgBlock, Block, ElemBlock, Offsets, PathAlgebra, Semiring};
use sparklet::EstimateSize;

/// `InColumn` (Table 1): does the stored upper-triangular record `key`
/// carry data of row/column-block `x`? With symmetric storage the
/// column-block `x` of the full matrix is the "cross" `{(I, x)} ∪ {(x, J)}`.
pub fn in_column(key: &BlockKey, x: usize) -> bool {
    key.0 == x || key.1 == x
}

/// `OnDiagonal` (Table 1): is this the `x`-th diagonal block?
pub fn on_diagonal(key: &BlockKey, x: usize) -> bool {
    key.0 == x && key.1 == x
}

/// `ExtractCol` (Table 1): column `k` (block-local index) of a stored
/// element block, oriented as a segment of the *global* column: returns
/// `(row_block, values)` where `values[r]` is the path value from row `r`
/// of `row_block` to the pivot.
///
/// For a stored record `(I, J)` with `J` the pivot's column-block, that is
/// the block's `k`-th column; when `I` is the pivot's column-block (the
/// record is the transposed half of the cross), it is the `k`-th *row*.
pub fn extract_col_parts<S: Semiring>(
    key: &BlockKey,
    blk: &ElemBlock<S>,
    pivot_block: usize,
    k: usize,
) -> Vec<(usize, Vec<S::Elem>)> {
    let (i, j) = key;
    let mut out = Vec::new();
    if *j == pivot_block {
        out.push((*i, blk.extract_col(k)));
    }
    if *i == pivot_block && i != j {
        out.push((*j, blk.extract_row(k)));
    }
    out
}

/// A tagged block flowing through the pairing shuffles of the blocked
/// solvers (the values `ListAppend`/`ListUnpack` see).
///
/// `Stored` is the resident algebra block of `A` (the only piece carrying
/// payloads); `Left`/`Right` are element copies created by
/// `CopyDiag`/`CopyCol`, pre-oriented so the phase update for target
/// block `(I, J)` is `A_IJ = A_IJ ⊕ (Left ⊗ A_IJ)`,
/// `A_IJ ⊕ (A_IJ ⊗ Right)`, or `A_IJ ⊕ (Left ⊗ Right)` depending on
/// which pieces arrive.
#[derive(Clone)]
pub enum AlgPiece<A: PathAlgebra> {
    /// The resident algebra block of `A`.
    Stored(AlgBlock<A>),
    /// A left operand (`A_Ii`, pre-oriented element copy).
    Left(ElemBlock<A::Semi>),
    /// A right operand (`A_iJ`, pre-oriented element copy).
    Right(ElemBlock<A::Semi>),
}

impl<A: PathAlgebra> EstimateSize for AlgPiece<A> {
    fn estimate_bytes(&self) -> usize {
        8 + match self {
            AlgPiece::Stored(t) => t.estimate_bytes(),
            AlgPiece::Left(b) | AlgPiece::Right(b) => b.estimate_bytes(),
        }
    }
}

/// `CopyDiag` (Table 1): replicate the solved diagonal block `A_ii*` to
/// every cross block of iteration `i`, pre-oriented (`Right` for stored
/// `(X, i)` — pivot columns on the right; `Left` for `(i, Y)`).
pub fn copy_diag<A: PathAlgebra>(
    i: usize,
    diag: &ElemBlock<A::Semi>,
    q: usize,
) -> Vec<(BlockKey, AlgPiece<A>)> {
    let mut out = Vec::with_capacity(q.saturating_sub(1));
    for t in 0..q {
        if t == i {
            continue;
        }
        let key = canonical(t, i);
        let piece = if key == (t, i) {
            // Stored block is A_Ti (rows T, pivot cols): multiply on the right.
            AlgPiece::Right(diag.clone())
        } else {
            // Stored block is A_iY (pivot rows, cols Y): multiply on the left.
            AlgPiece::Left(diag.clone())
        };
        out.push((key, piece));
    }
    out
}

/// `CopyCol` (Table 1): replicate an updated cross block to every Phase-3
/// target that needs it, pre-oriented. `col_block` must be canonical
/// `C_T = A_Ti` (rows `T`, pivot columns); `t` is the cross index.
///
/// Target `(X, Y)` (upper-triangular, neither index `i`) needs
/// `Left = A_Xi = C_X` and `Right = A_iY = C_Yᵀ`; the diagonal target
/// `(T, T)` needs both from this one cross block.
pub fn copy_col<A: PathAlgebra>(
    t: usize,
    i: usize,
    col_block: &ElemBlock<A::Semi>,
    q: usize,
) -> Vec<(BlockKey, AlgPiece<A>)> {
    let mut out = Vec::with_capacity(q);
    for k in 0..q {
        if k == i {
            continue;
        }
        let key = canonical(t, k);
        if t == key.0 {
            // This cross block provides the Left operand (A_{key.0} i).
            out.push((key, AlgPiece::Left(col_block.clone())));
        }
        if t == key.1 {
            // ... and/or the Right operand (A_i {key.1} = C_tᵀ).
            out.push((key, AlgPiece::Right(col_block.transpose())));
        }
    }
    out
}

/// `ListUnpack` + `MatMin` (Table 1): resolve a pairing list into the
/// updated block. Exactly one `Stored` piece must be present.
///
/// * `Stored` + `Left` + `Right` → `A ⊕ (L ⊗ R)` (Phase 3),
/// * `Stored` + `Left` → `A ⊕ (L ⊗ A)` (Phase 2, pivot rows),
/// * `Stored` + `Right` → `A ⊕ (A ⊗ R)` (Phase 2, pivot cols),
/// * `Stored` alone → unchanged.
///
/// `pivot` and the target `key` orient the block-local indices globally
/// (payload-tracking algebras need them — see `apsp_blockmat::parent`).
///
/// A pairing list with no or multiple `Stored` pieces is an algorithmic
/// bug (a shuffle delivered the wrong records); it surfaces as a typed
/// [`sparklet::SparkError`] so the engine fails the task cleanly instead
/// of panicking the executor.
pub fn unpack_and_update<A: PathAlgebra>(
    kernel: MinPlusKernel,
    pieces: Vec<AlgPiece<A>>,
    pivot: usize,
    b: usize,
    key: BlockKey,
) -> Result<AlgBlock<A>, sparklet::SparkError> {
    let mut stored: Option<AlgBlock<A>> = None;
    let mut left: Option<ElemBlock<A::Semi>> = None;
    let mut right: Option<ElemBlock<A::Semi>> = None;
    for p in pieces {
        match p {
            AlgPiece::Stored(t) => {
                if stored.is_some() {
                    return Err(sparklet::SparkError::User(format!(
                        "duplicate Stored piece in pairing list for block ({}, {})",
                        key.0, key.1
                    )));
                }
                stored = Some(t);
            }
            AlgPiece::Left(b) => left = Some(b),
            AlgPiece::Right(b) => right = Some(b),
        }
    }
    let mut a = stored.ok_or_else(|| {
        sparklet::SparkError::User(format!(
            "pairing list lacks the Stored block for ({}, {})",
            key.0, key.1
        ))
    })?;
    let offsets = Offsets::blocks(b, pivot, key.0, key.1);
    match (left, right) {
        (Some(l), Some(r)) => a.min_plus_into_self(kernel, &l, &r, offsets),
        (Some(l), None) => a.min_plus_left_assign(kernel, &l, offsets),
        (None, Some(r)) => a.min_plus_assign(kernel, &r, offsets),
        (None, None) => {}
    }
    Ok(a)
}

/// `FloydWarshall` (Table 1): close a diagonal algebra block in place;
/// `diag_offset` is the global vertex id of its row/column `0`.
pub fn floyd_warshall_alg<A: PathAlgebra>(mut blk: AlgBlock<A>, diag_offset: usize) -> AlgBlock<A> {
    blk.floyd_warshall_in_place(diag_offset);
    blk
}

/// `FloydWarshall` over a plain `f64` distance block (the directed
/// solvers' untracked phase-1 step).
pub fn floyd_warshall(mut blk: Block) -> Block {
    blk.floyd_warshall_in_place();
    blk
}

#[cfg(test)]
mod tests {
    use super::*;
    use apsp_blockmat::{Tropical, INF};

    fn blk(vals: [[f64; 2]; 2]) -> ElemBlock<apsp_blockmat::TropicalF64> {
        ElemBlock::from_fn(2, |i, j| vals[i][j])
    }

    fn stored(vals: [[f64; 2]; 2]) -> AlgPiece<Tropical> {
        AlgPiece::Stored(AlgBlock::from_dist(blk(vals)))
    }

    const KEY: BlockKey = (2, 3);
    const PIVOT: usize = 1;

    fn unpack(pieces: Vec<AlgPiece<Tropical>>) -> AlgBlock<Tropical> {
        unpack_and_update(MinPlusKernel::Auto, pieces, PIVOT, 2, KEY).unwrap()
    }

    #[test]
    fn in_column_covers_cross() {
        assert!(in_column(&(0, 3), 3));
        assert!(in_column(&(3, 5), 3));
        assert!(in_column(&(3, 3), 3));
        assert!(!in_column(&(1, 2), 3));
    }

    #[test]
    fn extract_col_handles_both_orientations() {
        let b = blk([[0.0, 1.0], [10.0, 11.0]]);
        // Record (1, 2), pivot block 2: column k of the block.
        let got = extract_col_parts(&(1usize, 2usize), &b, 2, 1);
        assert_eq!(got, vec![(1, vec![1.0, 11.0])]);
        // Record (2, 4), pivot block 2: row k (transposed half).
        let got2 = extract_col_parts(&(2usize, 4usize), &b, 2, 0);
        assert_eq!(got2, vec![(4, vec![0.0, 1.0])]);
        // Diagonal record (2,2): column only (row would duplicate).
        let got3 = extract_col_parts(&(2usize, 2usize), &b, 2, 0);
        assert_eq!(got3.len(), 1);
        assert_eq!(got3[0].0, 2);
    }

    #[test]
    fn copy_diag_orientations() {
        let d = blk([[0.0, 1.0], [1.0, 0.0]]);
        let q = 4;
        let i = 2;
        let copies = copy_diag::<Tropical>(i, &d, q);
        assert_eq!(copies.len(), 3);
        for (key, piece) in copies {
            assert!(in_column(&key, i));
            match piece {
                // Stored (X, i) with X < i: right-multiply.
                AlgPiece::Right(_) => assert!(key.1 == i),
                // Stored (i, Y): left-multiply.
                AlgPiece::Left(_) => assert!(key.0 == i),
                AlgPiece::Stored(_) => panic!("copy must not be Stored"),
            }
        }
    }

    #[test]
    fn copy_col_covers_targets_including_diagonal() {
        let c = blk([[1.0, 2.0], [3.0, 4.0]]);
        let q = 4;
        let i = 1;
        let t = 3;
        let copies = copy_col::<Tropical>(t, i, &c, q);
        // Targets: (0,3) R, (2,3) R, (3,3) L+R — 4 pieces.
        assert_eq!(copies.len(), 4);
        let diag_pieces: Vec<_> = copies.iter().filter(|(k, _)| *k == (3, 3)).collect();
        assert_eq!(diag_pieces.len(), 2);
        // Right pieces are transposed.
        for (key, piece) in &copies {
            if let AlgPiece::Right(b) = piece {
                assert_eq!(key.1, t);
                assert_eq!(b.get(0, 1), c.get(1, 0));
            }
        }
    }

    #[test]
    fn unpack_phase3_computes_product() {
        let a = stored([[10.0, 10.0], [10.0, 10.0]]);
        let l = AlgPiece::Left(blk([[1.0, INF], [INF, 1.0]]));
        let r = AlgPiece::Right(blk([[2.0, 3.0], [4.0, 5.0]]));
        let out = unpack(vec![l, a, r]);
        assert_eq!(out.dist().get(0, 0), 3.0); // 1 + 2
        assert_eq!(out.dist().get(1, 1), 6.0); // 1 + 5
    }

    #[test]
    fn unpack_phase2_left_and_right() {
        let d = blk([[0.0, 1.0], [1.0, 0.0]]);
        // Right: A ⊗ D — can route through the cheap diagonal.
        let out_r = unpack(vec![stored([[4.0; 2]; 2]), AlgPiece::Right(d.clone())]);
        assert_eq!(out_r.dist().get(0, 0), 4.0);
        assert_eq!(out_r.dist().get(0, 1), 4.0);
        // Left: D ⊗ A.
        let out_l = unpack(vec![AlgPiece::Left(d), stored([[4.0; 2]; 2])]);
        assert_eq!(out_l.dist().get(0, 0), 4.0);
    }

    #[test]
    fn unpack_stored_only_is_identity() {
        let out = unpack(vec![stored([[0.0, 7.0], [7.0, 0.0]])]);
        assert_eq!(out.dist(), &blk([[0.0, 7.0], [7.0, 0.0]]));
    }

    #[test]
    fn unpack_requires_stored() {
        let err = unpack_and_update::<Tropical>(
            MinPlusKernel::Auto,
            vec![AlgPiece::Left(ElemBlock::zeros(2))],
            PIVOT,
            2,
            KEY,
        )
        .unwrap_err();
        assert!(err.to_string().contains("lacks the Stored block"));
    }

    #[test]
    fn unpack_rejects_duplicate_stored() {
        let err = unpack_and_update::<Tropical>(
            MinPlusKernel::Auto,
            vec![
                stored([[0.0, 1.0], [1.0, 0.0]]),
                stored([[0.0, 2.0], [2.0, 0.0]]),
            ],
            PIVOT,
            2,
            KEY,
        )
        .unwrap_err();
        assert!(err.to_string().contains("duplicate Stored piece"));
    }

    #[test]
    fn floyd_warshall_closes() {
        let mut a = Block::identity(3);
        a.set(0, 1, 1.0);
        a.set(1, 0, 1.0);
        a.set(1, 2, 1.0);
        a.set(2, 1, 1.0);
        let closed = floyd_warshall(a);
        assert_eq!(closed.get(0, 2), 2.0);

        let mut t = Block::identity(3);
        t.set(0, 1, 1.0);
        t.set(1, 0, 1.0);
        t.set(1, 2, 1.0);
        t.set(2, 1, 1.0);
        let closed_alg = floyd_warshall_alg(AlgBlock::<Tropical>::from_dist(t), 0);
        assert_eq!(closed_alg.dist(), &closed);
    }
}
