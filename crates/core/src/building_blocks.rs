//! The paper's Table 1: functional building blocks shared by the solvers.
//!
//! Each function operates on `((I, J), Block)` records (or pieces thereof)
//! and is passed to `sparklet` transformations, mirroring how the paper
//! passes them to Spark transformations. The compute-heavy ones delegate
//! to the `apsp-blockmat` kernels — the analogue of the paper's
//! NumPy/SciPy/Numba bare-metal offload.

use crate::blocks::{canonical, BlockKey, BlockRecord};
use apsp_blockmat::kernels::MinPlusKernel;
use apsp_blockmat::Block;
use sparklet::EstimateSize;

/// `InColumn` (Table 1): does the stored upper-triangular record `key`
/// carry data of row/column-block `x`? With symmetric storage the
/// column-block `x` of the full matrix is the "cross" `{(I, x)} ∪ {(x, J)}`.
pub fn in_column(key: &BlockKey, x: usize) -> bool {
    key.0 == x || key.1 == x
}

/// `OnDiagonal` (Table 1): is this the `x`-th diagonal block?
pub fn on_diagonal(key: &BlockKey, x: usize) -> bool {
    key.0 == x && key.1 == x
}

/// `ExtractCol` (Table 1): column `k` (block-local index) of the stored
/// block, oriented as a segment of the *global* column: returns
/// `(row_block, values)` where `values[r]` is the distance from row `r` of
/// `row_block` to the pivot.
///
/// For a stored record `(I, J)` with `J` the pivot's column-block, that is
/// the block's `k`-th column; when `I` is the pivot's column-block (the
/// record is the transposed half of the cross), it is the `k`-th *row*.
pub fn extract_col(record: &BlockRecord, pivot_block: usize, k: usize) -> Vec<(usize, Vec<f64>)> {
    extract_col_parts(&record.0, &record.1, pivot_block, k)
}

/// [`extract_col`] over borrowed parts, so callers holding a tracked (or
/// otherwise wrapped) record can extract from its distance block without
/// cloning it into a `BlockRecord`.
pub fn extract_col_parts(
    key: &BlockKey,
    blk: &Block,
    pivot_block: usize,
    k: usize,
) -> Vec<(usize, Vec<f64>)> {
    let (i, j) = key;
    let mut out = Vec::new();
    if *j == pivot_block {
        out.push((*i, blk.extract_col(k)));
    }
    if *i == pivot_block && i != j {
        out.push((*j, blk.extract_row(k)));
    }
    out
}

/// A tagged block flowing through the pairing shuffles of the blocked
/// solvers (the values `ListAppend`/`ListUnpack` see).
///
/// `Stored` is a matrix block of `A`; `Left`/`Right` are copies created by
/// `CopyDiag`/`CopyCol`, pre-oriented so the phase update for target block
/// `(I, J)` is `A_IJ = min(A_IJ, Left ⊗ A_IJ)`, `min(A_IJ, A_IJ ⊗ Right)`,
/// or `min(A_IJ, Left ⊗ Right)` depending on which pieces arrive.
#[derive(Clone, Debug)]
pub enum Piece {
    /// The resident block of `A`.
    Stored(Block),
    /// A left operand (`A_Ii`, rows of the target's row-block).
    Left(Block),
    /// A right operand (`A_iJ`, columns of the target's column-block).
    Right(Block),
}

impl EstimateSize for Piece {
    fn estimate_bytes(&self) -> usize {
        8 + match self {
            Piece::Stored(b) | Piece::Left(b) | Piece::Right(b) => b.estimate_bytes(),
        }
    }
}

/// `CopyDiag` (Table 1): replicate the solved diagonal block `A_ii*` to
/// every cross block of iteration `i`, pre-oriented (`Right` for stored
/// `(X, i)` — pivot columns on the right; `Left` for `(i, Y)`).
pub fn copy_diag(i: usize, diag: &Block, q: usize) -> Vec<(BlockKey, Piece)> {
    let mut out = Vec::with_capacity(q.saturating_sub(1));
    for t in 0..q {
        if t == i {
            continue;
        }
        let key = canonical(t, i);
        let piece = if key == (t, i) {
            // Stored block is A_Ti (rows T, pivot cols): multiply on the right.
            Piece::Right(diag.clone())
        } else {
            // Stored block is A_iY (pivot rows, cols Y): multiply on the left.
            Piece::Left(diag.clone())
        };
        out.push((key, piece));
    }
    out
}

/// `CopyCol` (Table 1): replicate an updated cross block to every Phase-3
/// target that needs it, pre-oriented. `col_block` must be canonical
/// `C_T = A_Ti` (rows `T`, pivot columns); `t` is the cross index.
///
/// Target `(X, Y)` (upper-triangular, neither index `i`) needs
/// `Left = A_Xi = C_X` and `Right = A_iY = C_Yᵀ`; the diagonal target
/// `(T, T)` needs both from this one cross block.
pub fn copy_col(t: usize, i: usize, col_block: &Block, q: usize) -> Vec<(BlockKey, Piece)> {
    let mut out = Vec::with_capacity(q);
    for k in 0..q {
        if k == i {
            continue;
        }
        let key = canonical(t, k);
        if t == key.0 {
            // This cross block provides the Left operand (A_{key.0} i).
            out.push((key, Piece::Left(col_block.clone())));
        }
        if t == key.1 {
            // ... and/or the Right operand (A_i {key.1} = C_tᵀ).
            out.push((key, Piece::Right(col_block.transpose())));
        }
    }
    out
}

/// `ListUnpack` + `MatMin` (Table 1): resolve a pairing list into the
/// updated block. Exactly one `Stored` piece must be present.
///
/// * `Stored` + `Left` + `Right` → `min(A, L ⊗ R)` (Phase 3),
/// * `Stored` + `Left` → `min(A, L ⊗ A)` (Phase 2, pivot rows),
/// * `Stored` + `Right` → `min(A, A ⊗ R)` (Phase 2, pivot cols),
/// * `Stored` alone → unchanged.
///
/// # Panics
/// Panics when the list carries no or multiple `Stored` pieces (an
/// algorithmic bug, not a data condition).
pub fn unpack_and_update(pieces: Vec<Piece>) -> Block {
    unpack_and_update_with(MinPlusKernel::Auto, pieces)
}

/// [`unpack_and_update`] with an explicit kernel choice. All three update
/// shapes run through the zero-alloc fold entry points: Phase 3 folds
/// `L ⊗ R` straight into `A`, and the Phase-2 shapes build the product in
/// the reused thread-local scratch instead of cloning the accumulator.
pub fn unpack_and_update_with(kernel: MinPlusKernel, pieces: Vec<Piece>) -> Block {
    let mut stored: Option<Block> = None;
    let mut left: Option<Block> = None;
    let mut right: Option<Block> = None;
    for p in pieces {
        match p {
            Piece::Stored(b) => {
                assert!(stored.is_none(), "duplicate Stored piece in pairing list");
                stored = Some(b);
            }
            Piece::Left(b) => left = Some(b),
            Piece::Right(b) => right = Some(b),
        }
    }
    let mut a = stored.expect("pairing list lacks the Stored block");
    match (left, right) {
        (Some(l), Some(r)) => a.min_plus_into_self_with(kernel, &l, &r),
        (Some(l), None) => a.min_plus_left_assign_with(kernel, &l),
        (None, Some(r)) => a.min_plus_assign_with(kernel, &r),
        (None, None) => {}
    }
    a
}

/// `FloydWarshall` (Table 1): close a diagonal block in place.
pub fn floyd_warshall(mut blk: Block) -> Block {
    blk.floyd_warshall_in_place();
    blk
}

#[cfg(test)]
mod tests {
    use super::*;
    use apsp_blockmat::INF;

    fn blk(vals: [[f64; 2]; 2]) -> Block {
        Block::from_fn(2, |i, j| vals[i][j])
    }

    #[test]
    fn in_column_covers_cross() {
        assert!(in_column(&(0, 3), 3));
        assert!(in_column(&(3, 5), 3));
        assert!(in_column(&(3, 3), 3));
        assert!(!in_column(&(1, 2), 3));
    }

    #[test]
    fn extract_col_handles_both_orientations() {
        let b = Block::from_fn(2, |i, j| (10 * i + j) as f64);
        // Record (1, 2), pivot block 2: column k of the block.
        let rec = ((1usize, 2usize), b.clone());
        let got = extract_col(&rec, 2, 1);
        assert_eq!(got, vec![(1, vec![1.0, 11.0])]);
        // Record (2, 4), pivot block 2: row k (transposed half).
        let rec2 = ((2usize, 4usize), b.clone());
        let got2 = extract_col(&rec2, 2, 0);
        assert_eq!(got2, vec![(4, vec![0.0, 1.0])]);
        // Diagonal record (2,2): column only (row would duplicate).
        let rec3 = ((2usize, 2usize), b);
        let got3 = extract_col(&rec3, 2, 0);
        assert_eq!(got3.len(), 1);
        assert_eq!(got3[0].0, 2);
    }

    #[test]
    fn copy_diag_orientations() {
        let d = blk([[0.0, 1.0], [1.0, 0.0]]);
        let q = 4;
        let i = 2;
        let copies = copy_diag(i, &d, q);
        assert_eq!(copies.len(), 3);
        for (key, piece) in copies {
            assert!(in_column(&key, i));
            match piece {
                // Stored (X, i) with X < i: right-multiply.
                Piece::Right(_) => assert!(key.1 == i),
                // Stored (i, Y): left-multiply.
                Piece::Left(_) => assert!(key.0 == i),
                Piece::Stored(_) => panic!("copy must not be Stored"),
            }
        }
    }

    #[test]
    fn copy_col_covers_targets_including_diagonal() {
        let c = blk([[1.0, 2.0], [3.0, 4.0]]);
        let q = 4;
        let i = 1;
        let t = 3;
        let copies = copy_col(t, i, &c, q);
        // Targets: (0,3) R, (2,3) R, (3,3) L+R — 4 pieces.
        assert_eq!(copies.len(), 4);
        let diag_pieces: Vec<_> = copies.iter().filter(|(k, _)| *k == (3, 3)).collect();
        assert_eq!(diag_pieces.len(), 2);
        // Right pieces are transposed.
        for (key, piece) in &copies {
            if let Piece::Right(b) = piece {
                assert_eq!(key.1, t);
                assert_eq!(b.get(0, 1), c.get(1, 0));
            }
        }
    }

    #[test]
    fn unpack_phase3_computes_product() {
        let a = blk([[10.0, 10.0], [10.0, 10.0]]);
        let l = blk([[1.0, INF], [INF, 1.0]]);
        let r = blk([[2.0, 3.0], [4.0, 5.0]]);
        let out = unpack_and_update(vec![Piece::Left(l), Piece::Stored(a), Piece::Right(r)]);
        assert_eq!(out.get(0, 0), 3.0); // 1 + 2
        assert_eq!(out.get(1, 1), 6.0); // 1 + 5
    }

    #[test]
    fn unpack_phase2_left_and_right() {
        let a = blk([[4.0, 4.0], [4.0, 4.0]]);
        let d = blk([[0.0, 1.0], [1.0, 0.0]]);
        // Right: A ⊗ D — can route through the cheap diagonal.
        let out_r = unpack_and_update(vec![Piece::Stored(a.clone()), Piece::Right(d.clone())]);
        assert_eq!(out_r.get(0, 0), 4.0);
        assert_eq!(out_r.get(0, 1), 4.0);
        // Left: D ⊗ A.
        let out_l = unpack_and_update(vec![Piece::Left(d), Piece::Stored(a)]);
        assert_eq!(out_l.get(0, 0), 4.0);
    }

    #[test]
    fn unpack_stored_only_is_identity() {
        let a = blk([[0.0, 7.0], [7.0, 0.0]]);
        assert_eq!(unpack_and_update(vec![Piece::Stored(a.clone())]), a);
    }

    #[test]
    #[should_panic(expected = "lacks the Stored block")]
    fn unpack_requires_stored() {
        let _ = unpack_and_update(vec![Piece::Left(Block::infinity(2))]);
    }

    #[test]
    fn floyd_warshall_closes() {
        let mut a = Block::identity(3);
        a.set(0, 1, 1.0);
        a.set(1, 0, 1.0);
        a.set(1, 2, 1.0);
        a.set(2, 1, 1.0);
        let closed = floyd_warshall(a);
        assert_eq!(closed.get(0, 2), 2.0);
    }
}
