//! Block-size auto-tuning (the paper's §5.2/§5.3 guidance, mechanized).
//!
//! Two tuners are provided:
//!
//! * [`suggest_block_size`] — the closed-form heuristic: pick `b` so the
//!   upper-triangular block count supports `B` partitions per core
//!   (`q(q+1)/2 ≥ B·p`), clamped to the cache-friendly kernel range the
//!   paper's Fig. 2 identifies;
//! * [`tune_with_model`] — the model-driven tuner: sweep candidate block
//!   sizes through the [`apsp_cluster`] projection and pick the feasible
//!   minimum (how the paper's Table 3 per-`p` block sizes arise).

use apsp_cluster::{
    project, ClusterSpec, KernelRates, Projection, SolverKind, SparkOverheads, Workload,
};

/// Smallest block the heuristic will suggest (below this, task-scheduling
/// overheads dominate — paper §5.2).
pub const MIN_BLOCK: usize = 64;

/// Largest cache-friendly block on the paper's Skylake nodes: Fig. 2 puts
/// the L3 knee near `b ≈ 1810`.
pub const CACHE_KNEE: usize = 1810;

/// Closed-form block-size suggestion for an `n`-vertex problem on `cores`
/// cores with `partitions_per_core` (`B`) partitions per core.
pub fn suggest_block_size(n: usize, cores: usize, partitions_per_core: usize) -> usize {
    assert!(n > 0 && cores > 0, "need a non-empty problem and cores");
    let b_target = partitions_per_core.max(1) * cores;
    // Want q(q+1)/2 >= b_target → q >= (√(8t+1) - 1)/2.
    let q_min = (((8.0 * b_target as f64 + 1.0).sqrt() - 1.0) / 2.0).ceil() as usize;
    let b = n.div_ceil(q_min.max(1));
    b.clamp(MIN_BLOCK.min(n), CACHE_KNEE)
}

/// Sweeps `candidates` through the cluster model for `solver` and returns
/// the feasible block size with the lowest projected total, with its
/// projection. Returns `None` when no candidate is feasible.
pub fn tune_with_model(
    solver: SolverKind,
    n: usize,
    spec: &ClusterSpec,
    rates: &KernelRates,
    overheads: &SparkOverheads,
    candidates: &[usize],
) -> Option<(usize, Projection)> {
    let mut best: Option<(usize, Projection)> = None;
    for &b in candidates {
        if b == 0 {
            continue;
        }
        let w = Workload::paper_default(n, b);
        let p = project(solver, &w, spec, rates, overheads);
        if !p.feasibility.is_feasible() {
            continue;
        }
        match &best {
            Some((_, cur)) if cur.total_s <= p.total_s => {}
            _ => best = Some((b, p)),
        }
    }
    best
}

/// Routes a block-size suggestion through the cluster model's feasibility
/// verdict — the check shared by the query planner (`crate::plan`) and
/// [`crate::SolverConfig::auto`].
///
/// Returns `suggested` unchanged when [`project`] marks it feasible for
/// `solver` on `spec`. Otherwise sweeps a candidate grid — the paper grid
/// plus power-of-two refinements of `suggested` down to `1` — through
/// [`tune_with_model`] and returns the feasible candidate with the lowest
/// projected total. `None` when no candidate is feasible (the cluster
/// cannot run this solver at this `n` for any block size, e.g. the
/// paper's Blocked-IM at `n = 262144`).
pub fn feasible_block_size(
    solver: SolverKind,
    n: usize,
    spec: &ClusterSpec,
    rates: &KernelRates,
    overheads: &SparkOverheads,
    suggested: usize,
) -> Option<usize> {
    let suggested = suggested.clamp(1, n.max(1));
    let w = Workload::paper_default(n, suggested);
    if project(solver, &w, spec, rates, overheads)
        .feasibility
        .is_feasible()
    {
        return Some(suggested);
    }
    let mut candidates = paper_candidates();
    let mut half = suggested;
    while half >= 1 {
        candidates.push(half);
        if half == 1 {
            break;
        }
        half /= 2;
    }
    candidates.retain(|&b| b <= n.max(1));
    tune_with_model(solver, n, spec, rates, overheads, &candidates).map(|(b, _)| b)
}

/// The paper's candidate grid for Table 2/Fig. 3 sweeps.
pub fn paper_candidates() -> Vec<usize> {
    vec![
        256, 512, 768, 1024, 1280, 1536, 1792, 2048, 2560, 3072, 4096,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heuristic_respects_parallelism() {
        let b = suggest_block_size(262_144, 1024, 2);
        let q = 262_144usize.div_ceil(b);
        assert!(
            q * (q + 1) / 2 >= 2048,
            "q={q} too coarse for B=2 on 1024 cores"
        );
        assert!(b <= CACHE_KNEE);
    }

    #[test]
    fn heuristic_small_problem_small_block() {
        let b = suggest_block_size(100, 4, 2);
        assert!(b <= 64);
        assert!(b >= 1);
    }

    #[test]
    fn model_tuner_picks_feasible_minimum() {
        let spec = ClusterSpec::paper_cluster();
        let rates = KernelRates::paper();
        let ov = SparkOverheads::default();
        let (b, proj) = tune_with_model(
            SolverKind::BlockedCollectBroadcast,
            262_144,
            &spec,
            &rates,
            &ov,
            &paper_candidates(),
        )
        .expect("CB must have a feasible block size");
        assert!(proj.feasibility.is_feasible());
        // The paper lands on b ≈ 1024–2560 for CB at this scale.
        assert!((512..=4096).contains(&b), "tuned b = {b}");
        // No candidate strictly beats the pick.
        for &cand in &paper_candidates() {
            let w = Workload::paper_default(262_144, cand);
            let p = project(SolverKind::BlockedCollectBroadcast, &w, &spec, &rates, &ov);
            if p.feasibility.is_feasible() {
                assert!(
                    p.total_s >= proj.total_s - 1e-9,
                    "candidate {cand} beats pick {b}"
                );
            }
        }
    }

    #[test]
    fn model_tuner_excludes_infeasible_im_blocks() {
        // At n = 131072 the IM tuner must not pick b < 1024 (storage cliff).
        let spec = ClusterSpec::paper_cluster();
        let (b, _) = tune_with_model(
            SolverKind::BlockedInMemory,
            131_072,
            &spec,
            &KernelRates::paper(),
            &SparkOverheads::default(),
            &paper_candidates(),
        )
        .expect("IM feasible at n=131072 for some b");
        assert!(b >= 1024, "tuner picked infeasible-region b = {b}");
    }

    #[test]
    fn feasible_block_size_keeps_feasible_suggestions() {
        let spec = ClusterSpec::local(4);
        let got = feasible_block_size(
            SolverKind::BlockedCollectBroadcast,
            500,
            &spec,
            &KernelRates::paper(),
            &SparkOverheads::default(),
            125,
        );
        assert_eq!(got, Some(125));
    }

    #[test]
    fn feasible_block_size_retunes_infeasible_suggestions() {
        // A machine whose RAM sits between the q=2 and q=8 working sets of
        // an n=1000 problem: the single-big-block suggestion overflows
        // (padding inflates the resident set), smaller blocks fit.
        let mut spec = ClusterSpec::local(1);
        spec.ram_per_node_bytes = 10 << 20; // 10 MiB
        let rates = KernelRates::paper();
        let ov = SparkOverheads::default();
        let suggested = 500; // q=2: 2·3·500²·8 = 12 MB > 10 MiB
        let w = Workload::paper_default(1000, suggested);
        assert!(
            !project(SolverKind::BlockedCollectBroadcast, &w, &spec, &rates, &ov)
                .feasibility
                .is_feasible(),
            "test premise: the suggestion must be infeasible"
        );
        let got = feasible_block_size(
            SolverKind::BlockedCollectBroadcast,
            1000,
            &spec,
            &rates,
            &ov,
            500,
        )
        .expect("a smaller block must fit");
        assert_ne!(got, 500);
        let w = Workload::paper_default(1000, got);
        assert!(
            project(SolverKind::BlockedCollectBroadcast, &w, &spec, &rates, &ov)
                .feasibility
                .is_feasible(),
            "returned block size must be feasible"
        );
    }

    #[test]
    fn feasible_block_size_reports_hopeless_cases() {
        // IM at n = 262144 on the paper cluster is infeasible for every b.
        assert_eq!(
            feasible_block_size(
                SolverKind::BlockedInMemory,
                262_144,
                &ClusterSpec::paper_cluster(),
                &KernelRates::paper(),
                &SparkOverheads::default(),
                2048,
            ),
            None
        );
    }

    #[test]
    fn model_tuner_reports_none_when_hopeless() {
        // IM at n = 262144 on the paper cluster: no feasible block size.
        let got = tune_with_model(
            SolverKind::BlockedInMemory,
            262_144,
            &ClusterSpec::paper_cluster(),
            &KernelRates::paper(),
            &SparkOverheads::default(),
            &paper_candidates(),
        );
        assert!(
            got.is_none(),
            "IM should be infeasible at n=262144: {got:?}"
        );
    }
}
