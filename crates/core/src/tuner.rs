//! Block-size auto-tuning (the paper's §5.2/§5.3 guidance, mechanized).
//!
//! Two tuners are provided:
//!
//! * [`suggest_block_size`] — the closed-form heuristic: pick `b` so the
//!   upper-triangular block count supports `B` partitions per core
//!   (`q(q+1)/2 ≥ B·p`), clamped to the cache-friendly kernel range the
//!   paper's Fig. 2 identifies;
//! * [`tune_with_model`] — the model-driven tuner: sweep candidate block
//!   sizes through the [`apsp_cluster`] projection and pick the feasible
//!   minimum (how the paper's Table 3 per-`p` block sizes arise).

use apsp_cluster::{
    project, ClusterSpec, KernelRates, Projection, SolverKind, SparkOverheads, Workload,
};

/// Smallest block the heuristic will suggest (below this, task-scheduling
/// overheads dominate — paper §5.2).
pub const MIN_BLOCK: usize = 64;

/// Largest cache-friendly block on the paper's Skylake nodes: Fig. 2 puts
/// the L3 knee near `b ≈ 1810`.
pub const CACHE_KNEE: usize = 1810;

/// Closed-form block-size suggestion for an `n`-vertex problem on `cores`
/// cores with `partitions_per_core` (`B`) partitions per core.
pub fn suggest_block_size(n: usize, cores: usize, partitions_per_core: usize) -> usize {
    assert!(n > 0 && cores > 0, "need a non-empty problem and cores");
    let b_target = partitions_per_core.max(1) * cores;
    // Want q(q+1)/2 >= b_target → q >= (√(8t+1) - 1)/2.
    let q_min = (((8.0 * b_target as f64 + 1.0).sqrt() - 1.0) / 2.0).ceil() as usize;
    let b = n.div_ceil(q_min.max(1));
    b.clamp(MIN_BLOCK.min(n), CACHE_KNEE)
}

/// Sweeps `candidates` through the cluster model for `solver` and returns
/// the feasible block size with the lowest projected total, with its
/// projection. Returns `None` when no candidate is feasible.
pub fn tune_with_model(
    solver: SolverKind,
    n: usize,
    spec: &ClusterSpec,
    rates: &KernelRates,
    overheads: &SparkOverheads,
    candidates: &[usize],
) -> Option<(usize, Projection)> {
    let mut best: Option<(usize, Projection)> = None;
    for &b in candidates {
        if b == 0 {
            continue;
        }
        let w = Workload::paper_default(n, b);
        let p = project(solver, &w, spec, rates, overheads);
        if !p.feasibility.is_feasible() {
            continue;
        }
        match &best {
            Some((_, cur)) if cur.total_s <= p.total_s => {}
            _ => best = Some((b, p)),
        }
    }
    best
}

/// Routes a block-size suggestion through the cluster model's feasibility
/// verdict — the check shared by the query planner (`crate::plan`) and
/// [`crate::SolverConfig::auto`].
///
/// Returns `suggested` unchanged when [`project`] marks it feasible for
/// `solver` on `spec`. Otherwise sweeps a candidate grid — the paper grid
/// plus power-of-two refinements of `suggested` down to `1` — through
/// [`tune_with_model`] and returns the feasible candidate with the lowest
/// projected total. `None` when no candidate is feasible (the cluster
/// cannot run this solver at this `n` for any block size, e.g. the
/// paper's Blocked-IM at `n = 262144`).
pub fn feasible_block_size(
    solver: SolverKind,
    n: usize,
    spec: &ClusterSpec,
    rates: &KernelRates,
    overheads: &SparkOverheads,
    suggested: usize,
) -> Option<usize> {
    let suggested = suggested.clamp(1, n.max(1));
    let w = Workload::paper_default(n, suggested);
    if project(solver, &w, spec, rates, overheads)
        .feasibility
        .is_feasible()
    {
        return Some(suggested);
    }
    let mut candidates = paper_candidates();
    let mut half = suggested;
    while half >= 1 {
        candidates.push(half);
        if half == 1 {
            break;
        }
        half /= 2;
    }
    candidates.retain(|&b| b <= n.max(1));
    tune_with_model(solver, n, spec, rates, overheads, &candidates).map(|(b, _)| b)
}

/// Sparse inputs smaller than this never route to the hierarchical path:
/// below ~1k vertices the dense blocked solve is already sub-second and
/// the partition/stitch machinery is pure overhead.
pub const SPARSE_MIN_N: usize = 1024;

/// Densest input the hierarchical path will accept: above ~2% finite
/// off-diagonal cells the boundary sets grow toward `n` and the skeleton
/// solve degenerates into the dense solve it was meant to avoid.
pub const SPARSE_MAX_DENSITY: f64 = 0.02;

/// Highest average degree the hierarchical path will accept. Density
/// alone cannot separate road-like graphs from sparse expanders:
/// Erdős–Rényi just above the connectivity threshold
/// (`pe = (1+ε)·ln n / n`, the paper's §5.1 workload) has density
/// `Θ(ln n / n)` — under [`SPARSE_MAX_DENSITY`] for every `n ≥ 1024` —
/// yet no locality: a BFS-grown part has almost every vertex adjacent
/// to the outside, so the skeleton approaches the whole graph and the
/// hierarchy pays the dense solve *plus* its own overhead. Road
/// networks and grids have bounded degree (≈ 2–5, `road_grid` ≈ 4.1);
/// threshold-ER degree is `(1+ε)·ln n` ≥ 7.6 at `n = 1024` and grows,
/// so a cut at 6 separates the two families at every qualifying size.
pub const SPARSE_MAX_AVG_DEGREE: f64 = 6.0;

/// Target partition size for the hierarchical sparse path.
///
/// Cost model (road-like graphs, boundary `≈ 4√m` per side-`√m` part):
/// local closures cost `Θ(n·m²)` total, the skeleton closure costs
/// `Θ(s³)` with `s ≈ 4n/√m` boundary vertices. Balancing the two gives
/// `m = (48·n²)^(2/7)` — e.g. `m ≈ 870` at `n ≈ 20k`. Clamped to
/// `[MIN_BLOCK, 4096]` (and to `n`) so tiny inputs stay one part and
/// huge ones keep cache-resident local solves.
pub fn hierarchical_part_size(n: usize) -> usize {
    let balanced = (48.0 * (n as f64) * (n as f64)).powf(2.0 / 7.0).round() as usize;
    balanced.clamp(MIN_BLOCK, 4096).min(n.max(1))
}

/// Whether the planner should prefer the hierarchical sparse path over
/// the dense blocked solve for an `n`-vertex undirected graph with the
/// given [`apsp_graph::Graph::density`] and
/// [`apsp_graph::Graph::avg_degree`].
///
/// The gate is deliberately conservative — all three thresholds must
/// hold:
///
/// * `n ≥` [`SPARSE_MIN_N`]: the dense solve's `Θ(n³)` must be large
///   enough that the `Θ(n·m² + s³)` hierarchical total wins after its
///   constant factors (partitioning, per-part setup, lazy stitching);
/// * `density ≤` [`SPARSE_MAX_DENSITY`]: denser graphs push the
///   boundary sets toward `n`, making the skeleton closure as large as
///   the problem it replaces;
/// * `avg_degree ≤` [`SPARSE_MAX_AVG_DEGREE`]: the bounded-degree
///   locality signal that separates road-like graphs from sparse
///   expanders (see the constant's rationale).
pub fn prefers_hierarchical(n: usize, density: f64, avg_degree: f64) -> bool {
    n >= SPARSE_MIN_N && density <= SPARSE_MAX_DENSITY && avg_degree <= SPARSE_MAX_AVG_DEGREE
}

/// The paper's candidate grid for Table 2/Fig. 3 sweeps.
pub fn paper_candidates() -> Vec<usize> {
    vec![
        256, 512, 768, 1024, 1280, 1536, 1792, 2048, 2560, 3072, 4096,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heuristic_respects_parallelism() {
        let b = suggest_block_size(262_144, 1024, 2);
        let q = 262_144usize.div_ceil(b);
        assert!(
            q * (q + 1) / 2 >= 2048,
            "q={q} too coarse for B=2 on 1024 cores"
        );
        assert!(b <= CACHE_KNEE);
    }

    #[test]
    fn heuristic_small_problem_small_block() {
        let b = suggest_block_size(100, 4, 2);
        assert!(b <= 64);
        assert!(b >= 1);
    }

    #[test]
    fn hierarchical_part_size_balances_and_clamps() {
        // Balanced point at n = 20164: (48·n²)^(2/7) ≈ 870.
        let m = hierarchical_part_size(20_164);
        assert!((700..=1100).contains(&m), "m = {m}");
        // Tiny inputs: clamp to MIN_BLOCK then to n.
        assert_eq!(hierarchical_part_size(10), 10);
        assert_eq!(hierarchical_part_size(0), 1);
        assert_eq!(hierarchical_part_size(100), 64);
        // Huge inputs: cap at 4096 so local solves stay cache-resident.
        assert_eq!(hierarchical_part_size(10_000_000), 4096);
    }

    #[test]
    fn sparse_gate_needs_size_sparsity_and_bounded_degree() {
        assert!(prefers_hierarchical(20_164, 0.0002, 4.1), "road_grid");
        assert!(prefers_hierarchical(1024, 0.02, 6.0), "boundary values");
        assert!(!prefers_hierarchical(1023, 0.0001, 4.0), "too small");
        assert!(!prefers_hierarchical(20_164, 0.1, 4.0), "too dense");
        assert!(
            !prefers_hierarchical(96, 0.05, 3.9),
            "grid(8,12) stays dense"
        );
        // Threshold Erdős–Rényi: sparse by density but an expander —
        // degree (1+ε)·ln n ≈ 7.7 at n = 1100 fails the locality gate.
        assert!(!prefers_hierarchical(1100, 0.0075, 7.7), "sparse expander");
    }

    #[test]
    fn model_tuner_picks_feasible_minimum() {
        let spec = ClusterSpec::paper_cluster();
        let rates = KernelRates::paper();
        let ov = SparkOverheads::default();
        let (b, proj) = tune_with_model(
            SolverKind::BlockedCollectBroadcast,
            262_144,
            &spec,
            &rates,
            &ov,
            &paper_candidates(),
        )
        .expect("CB must have a feasible block size");
        assert!(proj.feasibility.is_feasible());
        // The paper lands on b ≈ 1024–2560 for CB at this scale.
        assert!((512..=4096).contains(&b), "tuned b = {b}");
        // No candidate strictly beats the pick.
        for &cand in &paper_candidates() {
            let w = Workload::paper_default(262_144, cand);
            let p = project(SolverKind::BlockedCollectBroadcast, &w, &spec, &rates, &ov);
            if p.feasibility.is_feasible() {
                assert!(
                    p.total_s >= proj.total_s - 1e-9,
                    "candidate {cand} beats pick {b}"
                );
            }
        }
    }

    #[test]
    fn model_tuner_excludes_infeasible_im_blocks() {
        // At n = 131072 the IM tuner must not pick b < 1024 (storage cliff).
        let spec = ClusterSpec::paper_cluster();
        let (b, _) = tune_with_model(
            SolverKind::BlockedInMemory,
            131_072,
            &spec,
            &KernelRates::paper(),
            &SparkOverheads::default(),
            &paper_candidates(),
        )
        .expect("IM feasible at n=131072 for some b");
        assert!(b >= 1024, "tuner picked infeasible-region b = {b}");
    }

    #[test]
    fn feasible_block_size_keeps_feasible_suggestions() {
        let spec = ClusterSpec::local(4);
        let got = feasible_block_size(
            SolverKind::BlockedCollectBroadcast,
            500,
            &spec,
            &KernelRates::paper(),
            &SparkOverheads::default(),
            125,
        );
        assert_eq!(got, Some(125));
    }

    #[test]
    fn feasible_block_size_retunes_infeasible_suggestions() {
        // A machine whose RAM sits between the q=2 and q=8 working sets of
        // an n=1000 problem: the single-big-block suggestion overflows
        // (padding inflates the resident set), smaller blocks fit.
        let mut spec = ClusterSpec::local(1);
        spec.ram_per_node_bytes = 10 << 20; // 10 MiB
        let rates = KernelRates::paper();
        let ov = SparkOverheads::default();
        let suggested = 500; // q=2: 2·3·500²·8 = 12 MB > 10 MiB
        let w = Workload::paper_default(1000, suggested);
        assert!(
            !project(SolverKind::BlockedCollectBroadcast, &w, &spec, &rates, &ov)
                .feasibility
                .is_feasible(),
            "test premise: the suggestion must be infeasible"
        );
        let got = feasible_block_size(
            SolverKind::BlockedCollectBroadcast,
            1000,
            &spec,
            &rates,
            &ov,
            500,
        )
        .expect("a smaller block must fit");
        assert_ne!(got, 500);
        let w = Workload::paper_default(1000, got);
        assert!(
            project(SolverKind::BlockedCollectBroadcast, &w, &spec, &rates, &ov)
                .feasibility
                .is_feasible(),
            "returned block size must be feasible"
        );
    }

    #[test]
    fn feasible_block_size_reports_hopeless_cases() {
        // IM at n = 262144 on the paper cluster is infeasible for every b.
        assert_eq!(
            feasible_block_size(
                SolverKind::BlockedInMemory,
                262_144,
                &ClusterSpec::paper_cluster(),
                &KernelRates::paper(),
                &SparkOverheads::default(),
                2048,
            ),
            None
        );
    }

    #[test]
    fn model_tuner_reports_none_when_hopeless() {
        // IM at n = 262144 on the paper cluster: no feasible block size.
        let got = tune_with_model(
            SolverKind::BlockedInMemory,
            262_144,
            &ClusterSpec::paper_cluster(),
            &KernelRates::paper(),
            &SparkOverheads::default(),
            &paper_candidates(),
        );
        assert!(
            got.is_none(),
            "IM should be infeasible at n=262144: {got:?}"
        );
    }
}
