//! The service's solve-job subsystem: a bounded queue of [`JobSpec`]s, a
//! worker pool that runs them through [`crate::plan::Problem`], and a
//! registry of finished [`Solution`]s that point queries answer from.
//!
//! The queue is *bounded by design*: [`JobQueue::submit`] refuses work
//! once `queued + running` reaches the configured depth, which the HTTP
//! layer surfaces as `429 Too Many Requests` — backpressure instead of
//! unbounded buffering. Every job gets its own [`SparkContext`] (own
//! [`CancelToken`], own [`CheckpointSignal`], own side channel) built
//! over the *shared* server [`Metrics`], so `GET /metrics` aggregates all
//! jobs while cancellation and checkpointing stay per-job:
//!
//! * `DELETE /jobs/<id>` trips the job's cancel token; the engine refuses
//!   the next task launch with `SparkError::Cancelled`, pre-empting the
//!   retry/backoff budget (the PR 7 chaos/retry layer's hook).
//! * Graceful shutdown fires the job's checkpoint signal first, so the
//!   solve commits a round-granular snapshot before the cancel lands and
//!   a later `POST /solve` with `"resume_from"` can continue it.

use crate::checkpoint::{CheckpointSignal, CheckpointSpec};
use crate::plan::{Problem, Solution, SolverId, Workload};
use crate::solver::ApspError;
use apsp_graph::{generators, io};
use parking_lot::Mutex;
use serde::Value;
use sparklet::{CancelToken, Metrics, SparkConfig, SparkContext, SparkError};
use std::collections::{HashMap, VecDeque};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Maps the CLI/JSON solver short names (`cb`, `im`, `fw2d`, …) to
/// [`SolverId`]s. One table for the `apspark solve` flag, the `POST
/// /solve` body, and anything else that names solvers in text.
pub fn solver_by_name(name: &str) -> Option<SolverId> {
    Some(match name {
        "cb" => SolverId::BlockedCollectBroadcast,
        "im" => SolverId::BlockedInMemory,
        "fw2d" => SolverId::FloydWarshall2D,
        "rs" => SolverId::RepeatedSquaring,
        "cartesian" => SolverId::CartesianSquaring,
        "johnson" => SolverId::DistributedJohnson,
        "mpi-fw2d" => SolverId::MpiFw2d,
        "mpi-dc" => SolverId::MpiDc,
        "hierarchical" | "sparse" => SolverId::SparseHierarchical,
        _ => return None,
    })
}

/// Maps workload labels (`shortest-paths`, `widest-paths`,
/// `reachability`) back to [`Workload`]s — the inverse of
/// [`Workload::label`], plus a couple of forgiving aliases.
pub fn workload_by_name(name: &str) -> Option<Workload> {
    match name {
        "shortest-paths" | "shortest" | "apsp" => Some(Workload::ShortestPaths),
        "widest-paths" | "widest" => Some(Workload::Widest),
        "reachability" | "reach" => Some(Workload::Reachability),
        _ => None,
    }
}

/// Where a solve job's graph comes from.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphSource {
    /// An Erdős–Rényi instance from the paper's generator family.
    Generator {
        /// Vertex count.
        n: usize,
        /// Edge probability; defaults to the paper's `p(n, 0.1)` scaling
        /// when absent.
        p: Option<f64>,
        /// Generator seed.
        seed: u64,
    },
    /// An edge-list file on the server's filesystem.
    File {
        /// Path to the edge list.
        path: PathBuf,
    },
}

/// A parsed `POST /solve` request body: everything the worker needs to
/// build a [`Problem`] and run it.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// The input graph.
    pub source: GraphSource,
    /// Whether the input is directed.
    pub directed: bool,
    /// Which closure to compute.
    pub workload: Workload,
    /// Track witness paths (enables `/path` queries on the result).
    pub paths: bool,
    /// Explicit block size; planner-tuned when absent.
    pub block_size: Option<usize>,
    /// Solver preference; planner's choice when absent.
    pub solver: Option<SolverId>,
    /// Resume from a committed checkpoint directory (as reported by a
    /// graceful shutdown) instead of starting from round 0.
    pub resume_from: Option<PathBuf>,
}

impl JobSpec {
    /// Parses a `POST /solve` JSON body. The shape:
    ///
    /// ```json
    /// {
    ///   "graph": {"n": 96, "p": 0.1, "seed": 7} ,
    ///   "workload": "shortest-paths",
    ///   "paths": true,
    ///   "block_size": 32,
    ///   "solver": "cb",
    ///   "directed": false,
    ///   "resume_from": "/tmp/apspark-serve/job-x/ckpt"
    /// }
    /// ```
    ///
    /// `graph` may instead be `{"file": "/path/to/edges.txt"}`. Only
    /// `graph` is required. Errors are human-readable strings the HTTP
    /// layer returns verbatim inside a `400` body.
    pub fn from_json(v: &Value) -> Result<JobSpec, String> {
        let graph = v.get("graph").ok_or("missing required field 'graph'")?;
        let source = if let Some(path) = graph.get("file") {
            let path = path.as_str().ok_or("'graph.file' must be a string path")?;
            GraphSource::File { path: path.into() }
        } else {
            let n = graph
                .get("n")
                .and_then(Value::as_usize)
                .ok_or("'graph' needs either a 'file' path or a generator size 'n'")?;
            if n == 0 {
                return Err("'graph.n' must be at least 1".into());
            }
            let p = match graph.get("p") {
                None => None,
                Some(p) => {
                    let p = p.as_f64().ok_or("'graph.p' must be a number")?;
                    if !(0.0..=1.0).contains(&p) {
                        return Err("'graph.p' must be in [0, 1]".into());
                    }
                    Some(p)
                }
            };
            let seed = match graph.get("seed") {
                None => 42,
                Some(s) => s
                    .as_u64()
                    .ok_or("'graph.seed' must be a non-negative integer")?,
            };
            GraphSource::Generator { n, p, seed }
        };
        let workload = match v.get("workload") {
            None => Workload::ShortestPaths,
            Some(w) => {
                let name = w.as_str().ok_or("'workload' must be a string")?;
                workload_by_name(name).ok_or_else(|| {
                    format!(
                        "unknown workload '{name}' (shortest-paths | widest-paths | reachability)"
                    )
                })?
            }
        };
        let paths = match v.get("paths") {
            None => false,
            Some(p) => p.as_bool().ok_or("'paths' must be a boolean")?,
        };
        let block_size = match v.get("block_size") {
            None => None,
            Some(b) => {
                let b = b
                    .as_usize()
                    .ok_or("'block_size' must be a positive integer")?;
                if b == 0 {
                    return Err("'block_size' must be at least 1".into());
                }
                Some(b)
            }
        };
        let solver = match v.get("solver") {
            None => None,
            Some(s) => {
                let name = s.as_str().ok_or("'solver' must be a string")?;
                Some(solver_by_name(name).ok_or_else(|| format!("unknown solver '{name}'"))?)
            }
        };
        let directed = match v.get("directed") {
            None => false,
            Some(d) => d.as_bool().ok_or("'directed' must be a boolean")?,
        };
        let resume_from = match v.get("resume_from") {
            None => None,
            Some(r) => Some(PathBuf::from(
                r.as_str()
                    .ok_or("'resume_from' must be a directory path string")?,
            )),
        };
        Ok(JobSpec {
            source,
            directed,
            workload,
            paths,
            block_size,
            solver,
            resume_from,
        })
    }

    /// Whether this job can carry a round-granular checkpoint spec:
    /// the engine-backed undirected solvers support them (and so does
    /// the planner's default choice), the MPI baselines, directed
    /// variants, and the lazy hierarchical path do not.
    fn checkpointable(&self) -> bool {
        !self.directed
            && matches!(
                self.solver,
                None | Some(
                    SolverId::BlockedCollectBroadcast
                        | SolverId::BlockedInMemory
                        | SolverId::FloydWarshall2D
                        | SolverId::RepeatedSquaring
                )
            )
    }
}

/// Lifecycle state of a solve job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, waiting for a worker.
    Queued,
    /// A worker is solving it.
    Running,
    /// Finished; its [`Solution`] is registered for point queries.
    Done,
    /// Failed with an error.
    Failed,
    /// Cancelled (while queued, by `DELETE`, or by shutdown).
    Cancelled,
}

impl JobState {
    /// Lowercase label used in status JSON.
    pub fn label(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }

    /// Whether the job can still change state.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobState::Done | JobState::Failed | JobState::Cancelled
        )
    }
}

/// A point-in-time public view of one job, renderable as status JSON.
#[derive(Debug, Clone)]
pub struct JobStatus {
    /// Job id, as returned by `POST /solve`.
    pub id: String,
    /// Current lifecycle state.
    pub state: JobState,
    /// Workload of the underlying spec.
    pub workload: Workload,
    /// Vertex count, once known (generator specs know it up front,
    /// file specs after loading).
    pub n: Option<usize>,
    /// Solve wall-clock seconds, once finished.
    pub elapsed_s: Option<f64>,
    /// Error text for [`JobState::Failed`] jobs.
    pub error: Option<String>,
    /// Checkpoint directory holding a committed, resumable round — set
    /// when a shutdown interrupted this job after a checkpoint landed.
    pub checkpoint_dir: Option<PathBuf>,
}

impl JobStatus {
    /// Renders the status as the `GET /jobs/<id>` JSON body.
    pub fn to_json(&self) -> Value {
        let mut fields = vec![
            ("id".to_string(), Value::Str(self.id.clone())),
            ("state".to_string(), Value::Str(self.state.label().into())),
            (
                "workload".to_string(),
                Value::Str(self.workload.label().into()),
            ),
        ];
        if let Some(n) = self.n {
            fields.push(("n".to_string(), Value::UInt(n as u64)));
        }
        if let Some(s) = self.elapsed_s {
            fields.push(("elapsed_s".to_string(), Value::Float(s)));
        }
        if let Some(e) = &self.error {
            fields.push(("error".to_string(), Value::Str(e.clone())));
        }
        if let Some(dir) = &self.checkpoint_dir {
            fields.push((
                "checkpoint_dir".to_string(),
                Value::Str(dir.display().to_string()),
            ));
        }
        Value::Object(fields)
    }
}

/// Everything the queue tracks per job.
struct Job {
    spec: JobSpec,
    state: JobState,
    cancel: CancelToken,
    signal: CheckpointSignal,
    checkpoint_dir: PathBuf,
    n: Option<usize>,
    elapsed_s: Option<f64>,
    error: Option<String>,
    /// Set once a shutdown confirmed a committed round under
    /// `checkpoint_dir`.
    resumable: bool,
    /// Admission order, for FIFO dispatch and "latest finished" defaults.
    seq: u64,
}

struct QueueState {
    pending: VecDeque<String>,
    jobs: HashMap<String, Job>,
    next_seq: u64,
}

/// Outcome of a cancellation request (`DELETE /jobs/<id>`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelOutcome {
    /// The job was still queued; it will never run.
    CancelledQueued,
    /// The job was running; its cancel token is tripped and the engine
    /// will refuse the next task launch.
    CancellingRunning,
    /// The job already reached a terminal state; nothing to cancel.
    AlreadyFinished(JobState),
    /// No such job.
    NotFound,
}

/// A running job's control handles, as seen by shutdown.
pub(crate) struct RunningJob {
    pub(crate) id: String,
    pub(crate) signal: CheckpointSignal,
    pub(crate) cancel: CancelToken,
    pub(crate) checkpoint_dir: PathBuf,
}

/// The bounded solve-job queue. Shared between the HTTP handlers
/// (submit/status/cancel) and the worker pool (claim/complete).
pub struct JobQueue {
    state: Mutex<QueueState>,
    capacity: usize,
    metrics: Arc<Metrics>,
    /// Root directory for per-job checkpoint dirs.
    work_dir: PathBuf,
}

impl JobQueue {
    /// An empty queue admitting at most `capacity` unfinished jobs
    /// (queued + running), charging counters to `metrics`, and placing
    /// per-job checkpoint directories under `work_dir`.
    pub fn new(capacity: usize, metrics: Arc<Metrics>, work_dir: PathBuf) -> JobQueue {
        JobQueue {
            state: Mutex::new(QueueState {
                pending: VecDeque::new(),
                jobs: HashMap::new(),
                next_seq: 0,
            }),
            capacity: capacity.max(1),
            metrics,
            work_dir,
        }
    }

    /// Unfinished jobs (queued + running).
    pub fn depth(&self) -> usize {
        let s = self.state.lock();
        s.jobs.values().filter(|j| !j.state.is_terminal()).count()
    }

    /// Admission capacity (queued + running bound).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Admits a job, or refuses it when the queue is full (the HTTP
    /// layer's `429`). Returns the new job id.
    pub fn submit(&self, spec: JobSpec) -> Result<String, QueueFull> {
        let mut s = self.state.lock();
        let depth = s.jobs.values().filter(|j| !j.state.is_terminal()).count();
        if depth >= self.capacity {
            self.metrics.note_job_rejected();
            return Err(QueueFull {
                depth,
                capacity: self.capacity,
            });
        }
        let seq = s.next_seq;
        s.next_seq += 1;
        let id = job_id(seq);
        let checkpoint_dir = self.work_dir.join(format!("job-{id}")).join("ckpt");
        s.pending.push_back(id.clone());
        let n = match &spec.source {
            GraphSource::Generator { n, .. } => Some(*n),
            GraphSource::File { .. } => None,
        };
        s.jobs.insert(
            id.clone(),
            Job {
                spec,
                state: JobState::Queued,
                cancel: CancelToken::new(),
                signal: CheckpointSignal::new(),
                checkpoint_dir,
                n,
                elapsed_s: None,
                error: None,
                resumable: false,
                seq,
            },
        );
        self.metrics.note_job_queued(depth as u64 + 1);
        Ok(id)
    }

    /// Pops the oldest queued job and marks it running. Called by
    /// workers; `None` when nothing is pending.
    pub(crate) fn claim_next(
        &self,
    ) -> Option<(String, JobSpec, CancelToken, CheckpointSignal, PathBuf)> {
        let mut s = self.state.lock();
        loop {
            let id = s.pending.pop_front()?;
            if let Some(job) = s.jobs.get_mut(&id) {
                // A queued job cancelled via DELETE never runs.
                if job.state != JobState::Queued {
                    continue;
                }
                job.state = JobState::Running;
                return Some((
                    id,
                    job.spec.clone(),
                    job.cancel.clone(),
                    job.signal.clone(),
                    job.checkpoint_dir.clone(),
                ));
            }
        }
    }

    /// Records a finished solve (worker side).
    pub(crate) fn complete(&self, id: &str, n: usize, elapsed_s: f64) {
        let mut s = self.state.lock();
        if let Some(job) = s.jobs.get_mut(id) {
            job.state = JobState::Done;
            job.n = Some(n);
            job.elapsed_s = Some(elapsed_s);
        }
    }

    /// Records a failed or cancelled solve (worker side). Cancellation is
    /// recognized by unwrapping the engine error to
    /// [`SparkError::Cancelled`].
    pub(crate) fn finish_err(&self, id: &str, err: &ApspError) {
        let cancelled = matches!(
            err,
            ApspError::Engine(e) if matches!(e.root(), SparkError::Cancelled { .. })
        );
        let mut s = self.state.lock();
        if let Some(job) = s.jobs.get_mut(id) {
            if cancelled {
                job.state = JobState::Cancelled;
            } else {
                job.state = JobState::Failed;
                job.error = Some(err.to_string());
            }
        }
    }

    /// Marks a committed checkpoint under the job's directory, making an
    /// interrupted job resumable (shutdown side).
    pub(crate) fn mark_resumable(&self, id: &str) {
        let mut s = self.state.lock();
        if let Some(job) = s.jobs.get_mut(id) {
            job.resumable = true;
        }
    }

    /// Requests cancellation of a job (the `DELETE /jobs/<id>` handler).
    pub fn cancel(&self, id: &str) -> CancelOutcome {
        let mut s = self.state.lock();
        let Some(job) = s.jobs.get_mut(id) else {
            return CancelOutcome::NotFound;
        };
        match job.state {
            JobState::Queued => {
                job.state = JobState::Cancelled;
                self.metrics.note_job_cancelled();
                CancelOutcome::CancelledQueued
            }
            JobState::Running => {
                job.cancel.cancel();
                self.metrics.note_job_cancelled();
                CancelOutcome::CancellingRunning
            }
            terminal => CancelOutcome::AlreadyFinished(terminal),
        }
    }

    /// The public status view of one job.
    pub fn status(&self, id: &str) -> Option<JobStatus> {
        let s = self.state.lock();
        s.jobs.get(id).map(|job| self.status_of(id, job))
    }

    /// Status of every known job, oldest first.
    pub fn list(&self) -> Vec<JobStatus> {
        let s = self.state.lock();
        let mut entries: Vec<(&String, &Job)> = s.jobs.iter().collect();
        entries.sort_by_key(|(_, job)| job.seq);
        entries
            .into_iter()
            .map(|(id, job)| self.status_of(id, job))
            .collect()
    }

    fn status_of(&self, id: &str, job: &Job) -> JobStatus {
        JobStatus {
            id: id.to_string(),
            state: job.state,
            workload: job.spec.workload,
            n: job.n,
            elapsed_s: job.elapsed_s,
            error: job.error.clone(),
            checkpoint_dir: job.resumable.then(|| job.checkpoint_dir.clone()),
        }
    }

    /// Control handles of every currently running job (shutdown side).
    pub(crate) fn running(&self) -> Vec<RunningJob> {
        let s = self.state.lock();
        s.jobs
            .iter()
            .filter(|(_, job)| job.state == JobState::Running)
            .map(|(id, job)| RunningJob {
                id: id.clone(),
                signal: job.signal.clone(),
                cancel: job.cancel.clone(),
                checkpoint_dir: job.checkpoint_dir.clone(),
            })
            .collect()
    }

    /// Whether `id`'s job is in a terminal state (or unknown).
    pub(crate) fn is_settled(&self, id: &str) -> bool {
        let s = self.state.lock();
        s.jobs.get(id).is_none_or(|job| job.state.is_terminal())
    }
}

/// `submit` refusal: the queue already holds `depth` unfinished jobs
/// against a bound of `capacity`.
#[derive(Debug, Clone, Copy)]
pub struct QueueFull {
    /// Unfinished jobs at refusal time.
    pub depth: usize,
    /// The configured bound.
    pub capacity: usize,
}

/// Registry of finished [`Solution`]s, keyed by job id (plus the
/// reserved `"store"` key for a `--store`-opened solution). Point
/// queries resolve against it.
pub struct SolutionRegistry {
    inner: Mutex<RegistryInner>,
}

struct RegistryInner {
    solutions: HashMap<String, Arc<Solution>>,
    /// Most recently registered job id (not the store), the default
    /// query target when no store is mounted.
    latest_job: Option<String>,
}

/// The reserved registry key for the store-backed solution the server
/// was started with (`apspark serve --store DIR`).
pub const STORE_SOLUTION_KEY: &str = "store";

impl SolutionRegistry {
    /// An empty registry.
    pub fn new() -> SolutionRegistry {
        SolutionRegistry {
            inner: Mutex::new(RegistryInner {
                solutions: HashMap::new(),
                latest_job: None,
            }),
        }
    }

    /// Registers a solution under `key`. Job completions update the
    /// "latest" default; the store key does not (an explicitly mounted
    /// store stays the default).
    pub fn register(&self, key: &str, solution: Arc<Solution>) {
        let mut inner = self.inner.lock();
        inner.solutions.insert(key.to_string(), solution);
        if key != STORE_SOLUTION_KEY {
            inner.latest_job = Some(key.to_string());
        }
    }

    /// The solution registered under `key`, if any.
    pub fn get(&self, key: &str) -> Option<Arc<Solution>> {
        self.inner.lock().solutions.get(key).cloned()
    }

    /// The default query target: the mounted store if present, else the
    /// most recently finished job's solution.
    pub fn default_solution(&self) -> Option<Arc<Solution>> {
        let inner = self.inner.lock();
        if let Some(sol) = inner.solutions.get(STORE_SOLUTION_KEY) {
            return Some(sol.clone());
        }
        inner
            .latest_job
            .as_ref()
            .and_then(|id| inner.solutions.get(id))
            .cloned()
    }
}

impl Default for SolutionRegistry {
    fn default() -> Self {
        SolutionRegistry::new()
    }
}

/// Pseudo-UUID job ids: FNV-1a over (pid, admission seq), rendered as
/// 16 hex digits. Unique within a server and overwhelmingly unlikely to
/// collide across restarts sharing a work dir.
fn job_id(seq: u64) -> String {
    let mut h: u64 = 0xcbf29ce484222325;
    for byte in std::process::id()
        .to_le_bytes()
        .into_iter()
        .chain(seq.to_le_bytes())
    {
        h ^= byte as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    format!("{h:016x}")
}

/// Runs one claimed job to completion: builds the graph, the
/// [`Problem`], a dedicated [`SparkContext`] over `metrics`, installs
/// the cancel token and (when supported) the on-signal checkpoint spec,
/// and solves. The caller records the outcome on the queue.
pub(crate) fn run_job(
    spec: &JobSpec,
    cancel: CancelToken,
    signal: CheckpointSignal,
    checkpoint_dir: &Path,
    metrics: Arc<Metrics>,
    cores: usize,
) -> Result<Solution, ApspError> {
    let ctx = SparkContext::with_shared_metrics(SparkConfig::with_cores(cores), metrics);
    ctx.install_cancel_token(cancel);

    let (graph, digraph);
    let mut problem = match (&spec.source, spec.directed) {
        (GraphSource::Generator { n, p, seed }, false) => {
            let p = p.unwrap_or_else(|| generators::paper_edge_probability(*n, 0.1));
            graph = generators::erdos_renyi(*n, p, *seed);
            Problem::new(&graph)
        }
        (GraphSource::Generator { n, p, seed }, true) => {
            let p = p.unwrap_or_else(|| generators::paper_edge_probability(*n, 0.1));
            digraph = generators::erdos_renyi_directed(*n, p, *seed);
            Problem::from_digraph(&digraph)
        }
        (GraphSource::File { path }, false) => {
            graph = io::load_graph(path).map_err(|e| {
                ApspError::InvalidInput(format!("cannot load '{}': {e}", path.display()))
            })?;
            Problem::new(&graph)
        }
        (GraphSource::File { path }, true) => {
            digraph = io::load_digraph(path).map_err(|e| {
                ApspError::InvalidInput(format!("cannot load '{}': {e}", path.display()))
            })?;
            Problem::from_digraph(&digraph)
        }
    };
    problem = problem.workload(spec.workload).cores(cores);
    if spec.paths {
        problem = problem.with_paths();
    }
    if let Some(b) = spec.block_size {
        problem = problem.block_size(b);
    }
    if let Some(solver) = spec.solver {
        problem = problem.prefer(solver);
    }
    if spec.checkpointable() {
        // Checkpoint at the shutdown signal's next round barrier; resume
        // from a prior committed round when the spec carries one.
        let dir = spec
            .resume_from
            .clone()
            .unwrap_or_else(|| checkpoint_dir.to_path_buf());
        let mut ckpt = CheckpointSpec::on_signal(dir, signal);
        if spec.resume_from.is_some() {
            ckpt = ckpt.and_resume();
        }
        problem = problem.checkpoint(ckpt);
    }
    problem.solve(&ctx)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics() -> Arc<Metrics> {
        Arc::new(Metrics::default())
    }

    fn queue(capacity: usize) -> (JobQueue, Arc<Metrics>) {
        let m = metrics();
        let q = JobQueue::new(
            capacity,
            m.clone(),
            std::env::temp_dir().join("apspark-jobs-test"),
        );
        (q, m)
    }

    fn generator_spec(n: usize) -> JobSpec {
        JobSpec::from_json(&serde_json::from_str(&format!(r#"{{"graph": {{"n": {n}}}}}"#)).unwrap())
            .unwrap()
    }

    #[test]
    fn name_tables_accept_every_documented_spelling() {
        for (name, id) in [
            ("cb", SolverId::BlockedCollectBroadcast),
            ("im", SolverId::BlockedInMemory),
            ("fw2d", SolverId::FloydWarshall2D),
            ("rs", SolverId::RepeatedSquaring),
            ("cartesian", SolverId::CartesianSquaring),
            ("johnson", SolverId::DistributedJohnson),
            ("mpi-fw2d", SolverId::MpiFw2d),
            ("mpi-dc", SolverId::MpiDc),
            ("hierarchical", SolverId::SparseHierarchical),
            ("sparse", SolverId::SparseHierarchical),
        ] {
            assert_eq!(solver_by_name(name), Some(id));
        }
        assert_eq!(solver_by_name("quantum"), None);
        for (name, w) in [
            ("shortest-paths", Workload::ShortestPaths),
            ("widest-paths", Workload::Widest),
            ("widest", Workload::Widest),
            ("reachability", Workload::Reachability),
        ] {
            assert_eq!(workload_by_name(name), Some(w));
        }
        assert_eq!(workload_by_name("fastest"), None);
    }

    #[test]
    fn job_spec_parses_and_validates() {
        let spec = JobSpec::from_json(
            &serde_json::from_str(
                r#"{"graph": {"n": 64, "p": 0.2, "seed": 9}, "directed": true,
                    "workload": "widest", "paths": true, "block_size": 16,
                    "solver": "cb"}"#,
            )
            .unwrap(),
        )
        .unwrap();
        assert!(matches!(
            spec.source,
            GraphSource::Generator { n: 64, p: Some(p), seed: 9 } if p == 0.2
        ));
        assert!(spec.directed && spec.paths);
        assert_eq!(spec.workload, Workload::Widest);
        assert_eq!(spec.block_size, Some(16));
        assert_eq!(spec.solver, Some(SolverId::BlockedCollectBroadcast));

        for bad in [
            r#"{}"#,
            r#"{"graph": {}}"#,
            r#"{"graph": {"n": 0}}"#,
            r#"{"graph": {"n": 8, "p": 1.5}}"#,
            r#"{"graph": {"n": 8}, "solver": "quantum"}"#,
            r#"{"graph": {"n": 8}, "workload": "fastest"}"#,
            r#"{"graph": {"n": 8}, "block_size": 0}"#,
        ] {
            let v = serde_json::from_str(bad).unwrap();
            assert!(JobSpec::from_json(&v).is_err(), "{bad} was accepted");
        }
    }

    #[test]
    fn queue_bounds_admission_and_counts_rejections() {
        let (q, metrics) = queue(2);
        let a = q.submit(generator_spec(8)).unwrap();
        let b = q.submit(generator_spec(8)).unwrap();
        assert_ne!(a, b, "job ids must be unique");
        let err = q.submit(generator_spec(8)).unwrap_err();
        assert_eq!((err.depth, err.capacity), (2, 2));
        assert_eq!(q.depth(), 2);
        let m = metrics.snapshot();
        assert_eq!(
            (m.jobs_queued, m.jobs_rejected, m.queue_depth_peak),
            (2, 1, 2)
        );
    }

    #[test]
    fn cancelling_a_queued_job_frees_a_slot_and_skips_dispatch() {
        let (q, _metrics) = queue(1);
        let id = q.submit(generator_spec(8)).unwrap();
        assert!(matches!(q.cancel(&id), CancelOutcome::CancelledQueued));
        assert!(matches!(
            q.cancel(&id),
            CancelOutcome::AlreadyFinished(JobState::Cancelled)
        ));
        assert!(matches!(q.cancel("nope"), CancelOutcome::NotFound));
        // The slot is free again and the cancelled job is never handed
        // to a worker.
        assert_eq!(q.depth(), 0);
        q.submit(generator_spec(8)).unwrap();
        let (claimed, _, _, _, _) = q.claim_next().expect("second job dispatches");
        assert_ne!(claimed, id);
        assert!(q.claim_next().is_none());
        assert_eq!(
            q.status(&id).unwrap().state,
            JobState::Cancelled,
            "cancelled job keeps its terminal status"
        );
    }

    #[test]
    fn registry_prefers_the_store_then_the_latest_job() {
        let reg = SolutionRegistry::new();
        assert!(reg.default_solution().is_none());
        let g = apsp_graph::generators::erdos_renyi_paper(12, 0.5, 3);
        let ctx = SparkContext::new(SparkConfig::with_cores(2));
        let sol_a = Arc::new(Problem::new(&g).solve(&ctx).unwrap());
        let sol_b = Arc::new(Problem::new(&g).solve(&ctx).unwrap());
        reg.register("job-a", sol_a.clone());
        assert!(Arc::ptr_eq(&reg.default_solution().unwrap(), &sol_a));
        reg.register("job-b", sol_b.clone());
        assert!(Arc::ptr_eq(&reg.default_solution().unwrap(), &sol_b));
        // A mounted store outranks any job as the default, without
        // displacing per-job lookups.
        let sol_store = Arc::new(Problem::new(&g).solve(&ctx).unwrap());
        reg.register(STORE_SOLUTION_KEY, sol_store.clone());
        assert!(Arc::ptr_eq(&reg.default_solution().unwrap(), &sol_store));
        assert!(Arc::ptr_eq(&reg.get("job-a").unwrap(), &sol_a));
    }
}
