//! The distributed blocked adjacency matrix.

use apsp_blockmat::{Block, Matrix};
use sparklet::partitioner::{MultiDiagonalPartitioner, PortableHashPartitioner};
use sparklet::{Partitioner, Rdd, SparkContext, SparkResult};
use std::sync::Arc;

/// Block coordinate `(I, J)` in the `q × q` grid; stored records always
/// satisfy `I <= J` (upper triangle).
pub type BlockKey = (usize, usize);

/// One RDD record: a keyed dense block.
pub type BlockRecord = (BlockKey, Block);

/// Which partitioner distributes block records (paper §5.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PartitionerChoice {
    /// The paper's multi-diagonal partitioner (default; balanced).
    #[default]
    MultiDiagonal,
    /// pySpark's default `portable_hash` (skewed on these keys).
    PortableHash,
}

impl PartitionerChoice {
    /// Instantiates the partitioner for a `q × q` grid and `partitions`
    /// output partitions.
    pub fn build(self, q: usize, partitions: usize) -> Arc<dyn Partitioner<BlockKey>> {
        match self {
            PartitionerChoice::MultiDiagonal => {
                Arc::new(MultiDiagonalPartitioner::new(q, partitions))
            }
            PartitionerChoice::PortableHash => Arc::new(PortableHashPartitioner::new(partitions)),
        }
    }
}

/// The distributed 2D-decomposed adjacency matrix: an RDD of
/// upper-triangular block records plus its geometry.
///
/// Exploiting symmetry, only blocks with `I <= J` are stored; `A_JI` is
/// materialized on demand as `A_IJᵀ` (paper §4 — "the executor responsible
/// for the processing of block `A_IJ` is also responsible for the
/// processing of block `A_JI`").
pub struct BlockedMatrix {
    /// Vertex count (pre-padding).
    pub n: usize,
    /// Block side.
    pub b: usize,
    /// Grid order `q = ⌈n/b⌉`.
    pub q: usize,
    /// The records.
    pub rdd: Rdd<BlockRecord>,
}

impl BlockedMatrix {
    /// Decomposes a dense symmetric adjacency matrix into upper-triangular
    /// blocks, distributed by `partitioner` without an initial shuffle.
    pub fn from_matrix(
        ctx: &SparkContext,
        m: &Matrix,
        b: usize,
        partitioner: Arc<dyn Partitioner<BlockKey>>,
    ) -> Self {
        let n = m.order();
        let q = n.div_ceil(b);
        let blocks = m.to_blocks(b);
        let mut records = Vec::with_capacity(q * (q + 1) / 2);
        for bi in 0..q {
            for bj in bi..q {
                records.push(((bi, bj), blocks[bi * q + bj].clone()));
            }
        }
        let rdd = ctx.parallelize_by(records, partitioner);
        BlockedMatrix { n, b, q, rdd }
    }

    /// Rebuilds the full dense distance matrix from the distributed upper
    /// triangle, mirroring across the diagonal and trimming padding.
    pub fn collect_to_matrix(&self) -> SparkResult<Matrix> {
        let records = self.rdd.collect()?;
        let mut expanded = Vec::with_capacity(records.len() * 2);
        for ((i, j), blk) in records {
            if i != j {
                expanded.push(((j, i), blk.transpose()));
            }
            expanded.push(((i, j), blk));
        }
        Ok(Matrix::from_blocks(self.n, self.b, expanded))
    }

    /// Replaces the underlying RDD (same geometry).
    pub fn with_rdd(&self, rdd: Rdd<BlockRecord>) -> BlockedMatrix {
        BlockedMatrix {
            n: self.n,
            b: self.b,
            q: self.q,
            rdd,
        }
    }
}

/// Canonicalizes a block coordinate to its stored (upper-triangular) key.
#[inline]
pub fn canonical(i: usize, j: usize) -> BlockKey {
    if i <= j {
        (i, j)
    } else {
        (j, i)
    }
}

/// Returns block `A_ij` in *logical* orientation (rows `i`, cols `j`) from
/// a stored record, transposing when the logical block is below the
/// diagonal.
pub fn oriented(stored_key: BlockKey, block: &Block, i: usize, j: usize) -> Block {
    debug_assert_eq!(canonical(i, j), stored_key);
    if (i, j) == stored_key {
        block.clone()
    } else {
        block.transpose()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apsp_blockmat::INF;
    use sparklet::SparkConfig;

    fn ctx() -> SparkContext {
        SparkContext::new(SparkConfig::with_cores(4))
    }

    fn sample_matrix(n: usize) -> Matrix {
        let mut m = Matrix::identity(n);
        for i in 0..n - 1 {
            m.set(i, i + 1, (i + 1) as f64);
            m.set(i + 1, i, (i + 1) as f64);
        }
        m
    }

    #[test]
    fn roundtrip_exact() {
        let sc = ctx();
        let m = sample_matrix(12);
        let bm =
            BlockedMatrix::from_matrix(&sc, &m, 4, PartitionerChoice::MultiDiagonal.build(3, 8));
        assert_eq!(bm.q, 3);
        assert_eq!(bm.rdd.count().unwrap(), 6); // upper triangle of 3x3
        assert_eq!(bm.collect_to_matrix().unwrap(), m);
    }

    #[test]
    fn roundtrip_with_padding() {
        let sc = ctx();
        let m = sample_matrix(10);
        let bm =
            BlockedMatrix::from_matrix(&sc, &m, 4, PartitionerChoice::PortableHash.build(3, 8));
        assert_eq!(bm.q, 3);
        assert_eq!(bm.collect_to_matrix().unwrap(), m);
    }

    #[test]
    fn stores_only_upper_triangle() {
        let sc = ctx();
        let m = sample_matrix(16);
        let bm =
            BlockedMatrix::from_matrix(&sc, &m, 4, PartitionerChoice::MultiDiagonal.build(4, 8));
        for ((i, j), _) in bm.rdd.collect().unwrap() {
            assert!(i <= j, "lower-triangular record ({i},{j}) stored");
        }
    }

    #[test]
    fn oriented_transposes_below_diagonal() {
        let blk = Block::from_fn(3, |i, j| (i * 3 + j) as f64);
        let same = oriented((1, 2), &blk, 1, 2);
        assert_eq!(same, blk);
        let flipped = oriented((1, 2), &blk, 2, 1);
        assert_eq!(flipped, blk.transpose());
    }

    #[test]
    fn canonical_orders() {
        assert_eq!(canonical(3, 1), (1, 3));
        assert_eq!(canonical(1, 3), (1, 3));
        assert_eq!(canonical(2, 2), (2, 2));
    }

    #[test]
    fn single_block_matrix() {
        let sc = ctx();
        let mut m = Matrix::identity(3);
        m.set(0, 2, 4.0);
        m.set(2, 0, 4.0);
        let bm =
            BlockedMatrix::from_matrix(&sc, &m, 8, PartitionerChoice::MultiDiagonal.build(1, 2));
        assert_eq!(bm.q, 1);
        let back = bm.collect_to_matrix().unwrap();
        assert_eq!(back.get(0, 2), 4.0);
        assert_eq!(back.get(1, 2), INF);
    }
}
