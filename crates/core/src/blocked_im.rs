//! Algorithm 3: Blocked In-Memory — the pure blocked solver.

use crate::engine::{self, AlgRun};
use crate::solver::{validate_adjacency, ApspError, ApspResult, ApspSolver, SolverConfig};
use apsp_blockmat::{Matrix, TrackedTropical, Tropical};
use sparklet::SparkContext;
use std::time::Instant;

/// The paper's Algorithm 3: the blocked (Venkataraman) Floyd-Warshall
/// staying entirely inside the fault-tolerant engine API. Data that the
/// Collect/Broadcast variant would stage in shared storage is instead
/// *replicated through shuffles*:
///
/// 1. Phase 1 closes the diagonal block (`FloydWarshall`) and `CopyDiag`
///    replicates it to the pivot cross, placed by the custom partitioner
///    (lines 2–4);
/// 2. Phase 2 pairs copies with cross blocks via `combineByKey`
///    (`ListAppend`) + `ListUnpack` and applies the update (lines 6–10),
///    then `CopyCol` replicates the updated cross to Phase-3 targets;
/// 3. Phase 3 pairs and updates the remaining blocks, and the union is
///    repartitioned (lines 12–15) — without this `partitionBy` the
///    partition count of the union would grow every iteration (§5.2).
///
/// Pure and fault-tolerant, but data-intensive: the copy shuffles move
/// (and spill) O(q²) blocks per iteration — the source of its local-
/// storage blowup at scale.
///
/// The algorithm itself lives in the crate-private `engine` module generically; this
/// front-end instantiates it with [`Tropical`] (plain APSP) or
/// [`TrackedTropical`] (`with_paths`).
#[derive(Debug, Default, Clone)]
pub struct BlockedInMemory;

impl ApspSolver for BlockedInMemory {
    fn name(&self) -> &'static str {
        "Blocked-IM"
    }

    fn is_pure(&self) -> bool {
        true
    }

    fn solve(
        &self,
        ctx: &SparkContext,
        adjacency: &Matrix,
        cfg: &SolverConfig,
    ) -> Result<ApspResult, ApspError> {
        if cfg.track_paths {
            return engine::solve_tracked(ctx, adjacency, cfg, engine::solve_im::<TrackedTropical>);
        }
        let n = adjacency.order();
        cfg.check(n)?;
        if cfg.validate_input {
            validate_adjacency(adjacency)?;
        }
        let start = Instant::now();
        let metrics_before = ctx.metrics();

        let run: AlgRun<Tropical> = engine::solve_im(ctx, n, &|i, j| adjacency.get(i, j), cfg)?;
        let (vals, _) = run.collect_dense()?;

        let metrics = ctx.metrics().delta(&metrics_before);
        Ok(ApspResult::new(
            Matrix::from_vec(n, vals),
            metrics,
            start.elapsed(),
            run.iterations,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocks::PartitionerChoice;
    use apsp_blockmat::INF;
    use apsp_graph::{floyd_warshall as fw_oracle, generators};
    use sparklet::SparkConfig;

    fn ctx() -> SparkContext {
        SparkContext::new(SparkConfig::with_cores(4))
    }

    #[test]
    fn matches_oracle_on_random_graph() {
        let g = generators::erdos_renyi_paper(96, 0.1, 123);
        let res = BlockedInMemory
            .solve(&ctx(), &g.to_dense(), &SolverConfig::new(24))
            .unwrap();
        assert!(res.distances().approx_eq(&fw_oracle(&g), 1e-9).is_ok());
        assert_eq!(res.iterations, 4);
    }

    #[test]
    fn matches_oracle_with_portable_hash() {
        let g = generators::erdos_renyi_paper(64, 0.1, 9);
        let cfg = SolverConfig::new(16).with_partitioner(PartitionerChoice::PortableHash);
        let res = BlockedInMemory.solve(&ctx(), &g.to_dense(), &cfg).unwrap();
        assert!(res.distances().approx_eq(&fw_oracle(&g), 1e-9).is_ok());
    }

    #[test]
    fn two_blocks_exercise_cross_only_iteration() {
        let g = generators::erdos_renyi_paper(30, 0.1, 31);
        let res = BlockedInMemory
            .solve(&ctx(), &g.to_dense(), &SolverConfig::new(15))
            .unwrap();
        assert!(res.distances().approx_eq(&fw_oracle(&g), 1e-9).is_ok());
        assert_eq!(res.iterations, 2);
    }

    #[test]
    fn single_block() {
        let g = generators::cycle(9);
        let res = BlockedInMemory
            .solve(&ctx(), &g.to_dense(), &SolverConfig::new(16))
            .unwrap();
        assert!(res.distances().approx_eq(&fw_oracle(&g), 1e-9).is_ok());
    }

    #[test]
    fn pure_no_side_channel_but_shuffles() {
        let sc = ctx();
        let g = generators::erdos_renyi_paper(64, 0.1, 6);
        let res = BlockedInMemory
            .solve(&sc, &g.to_dense(), &SolverConfig::new(16))
            .unwrap();
        assert_eq!(
            res.metrics.side_channel_writes, 0,
            "IM must not touch the side channel"
        );
        assert!(res.metrics.shuffles > 0, "IM disseminates via shuffles");
        assert!(res.metrics.shuffle_bytes > 0);
    }

    #[test]
    fn weighted_path_graph_long_chains() {
        // Worst case for blocked updates: all-pairs paths traverse many
        // pivot blocks.
        let g = generators::path(40);
        let res = BlockedInMemory
            .solve(&ctx(), &g.to_dense(), &SolverConfig::new(8))
            .unwrap();
        for i in 0..40 {
            for j in 0..40 {
                assert_eq!(
                    res.distances().get(i, j),
                    (i as f64 - j as f64).abs(),
                    "d({i},{j})"
                );
            }
        }
    }

    #[test]
    fn disconnected_graph() {
        let mut g = apsp_graph::Graph::new(10);
        g.add_edge(0, 9, 2.5);
        let res = BlockedInMemory
            .solve(&ctx(), &g.to_dense(), &SolverConfig::new(3))
            .unwrap();
        assert_eq!(res.distances().get(0, 9), 2.5);
        assert_eq!(res.distances().get(1, 2), INF);
    }
}
