//! FW-2D-GbE: the naive MPI 2D Floyd-Warshall baseline (§5.5).

use crate::solver::ApspError;
use apsp_blockmat::{tropical_add, Matrix, INF};
use mpilite::{CommCost, CommStats, World};

/// Result of an MPI-baseline run: the distances plus per-rank simulated
/// communication statistics (the α–β clock of `mpilite`).
#[derive(Debug, Clone)]
pub struct MpiRunResult {
    /// The full distance matrix.
    pub distances: Matrix,
    /// Per-rank communication statistics.
    pub stats: Vec<CommStats>,
    /// Maximum simulated elapsed time over ranks (the run's critical path
    /// under the cost model, excluding real compute).
    pub simulated_comm_s: f64,
}

/// The textbook parallel Floyd-Warshall on a `√p × √p` process grid
/// (Grama et al. \[8\], the paper's FW-2D baseline): each of the `n`
/// iterations broadcasts the pivot-row and pivot-column segments within
/// grid columns/rows (flat-tree sends — the "naive" part), then updates
/// the local tile.
#[derive(Debug, Clone)]
pub struct MpiFw2d {
    /// Process-grid side; uses `grid²` ranks.
    pub grid: usize,
    /// Communication cost model for the simulated clock.
    pub cost: CommCost,
    /// When set, each rank also advances its simulated clock by
    /// `rate × (tile ops)` per iteration, so `simulated_comm_s` becomes a
    /// full simulated runtime (compute + communication) — comparable to
    /// the `apsp-cluster` analytic projection.
    pub update_sec_per_op: Option<f64>,
}

impl MpiFw2d {
    /// FW-2D on a `grid × grid` rank grid with GbE costs.
    pub fn new(grid: usize) -> Self {
        MpiFw2d {
            grid,
            cost: CommCost::gbe(),
            update_sec_per_op: None,
        }
    }

    /// Enables simulated compute time at `rate` seconds per element
    /// update (use `KernelRates::paper().update_sec_per_op`).
    pub fn with_compute_rate(mut self, rate: f64) -> Self {
        self.update_sec_per_op = Some(rate);
        self
    }

    /// Like [`MpiFw2d::solve_matrix`], additionally tracking the parent
    /// (via) matrix for path reconstruction: each rank keeps a `u32` via
    /// tile beside its distance tile and records the global pivot `k` on
    /// every strict improvement. The broadcast traffic is unchanged — via
    /// tiles never travel.
    pub fn solve_matrix_paths(
        &self,
        adjacency: &Matrix,
    ) -> Result<(MpiRunResult, apsp_graph::paths::ParentMatrix), ApspError> {
        use apsp_blockmat::NO_VIA;

        let g = self.grid;
        if g == 0 {
            return Err(ApspError::InvalidConfig("grid must be positive".into()));
        }
        let n = adjacency.order();
        if n == 0 {
            return Err(ApspError::InvalidInput("empty graph".into()));
        }
        let m = n.div_ceil(g);
        let np = m * g;

        let tile_of = |r: usize, c: usize| -> Vec<f64> {
            let mut t = vec![INF; m * m];
            for i in 0..m {
                let gi = r * m + i;
                for j in 0..m {
                    let gj = c * m + j;
                    t[i * m + j] = if gi < n && gj < n {
                        adjacency.get(gi, gj)
                    } else if gi == gj {
                        0.0
                    } else {
                        INF
                    };
                }
            }
            t
        };

        let world = World::new(g * g, self.cost);
        let results = world.run(|comm| {
            let rank = comm.rank();
            let (r, c) = (rank / g, rank % g);
            let mut tile = tile_of(r, c);
            let mut via = vec![NO_VIA; m * m];

            for k in 0..np {
                let owner = k / m;
                let kloc = k % m;
                let row_seg: Vec<f64> = if r == owner {
                    let seg: Vec<f64> = tile[kloc * m..kloc * m + m].to_vec();
                    for dest_r in 0..g {
                        if dest_r != r {
                            comm.send_vec(dest_r * g + c, (2 * k) as u64, seg.clone());
                        }
                    }
                    seg
                } else {
                    comm.recv(owner * g + c, (2 * k) as u64)
                };
                let col_seg: Vec<f64> = if c == owner {
                    let seg: Vec<f64> = (0..m).map(|i| tile[i * m + kloc]).collect();
                    for dest_c in 0..g {
                        if dest_c != c {
                            comm.send_vec(r * g + dest_c, (2 * k + 1) as u64, seg.clone());
                        }
                    }
                    seg
                } else {
                    comm.recv(r * g + owner, (2 * k + 1) as u64)
                };

                // Strict-< rank-1 update recording the pivot as the via.
                // Degenerate cells (global row or column equal to k) only
                // ever tie — the segments are same-generation snapshots
                // and the diagonal is exactly 0 — so no guard is needed.
                let kg = k as u32;
                for (i, &dxk) in col_seg.iter().enumerate() {
                    if dxk == INF {
                        continue;
                    }
                    let row = &mut tile[i * m..i * m + m];
                    let vrow = &mut via[i * m..i * m + m];
                    for ((rv, vv), &dky) in row.iter_mut().zip(vrow.iter_mut()).zip(row_seg.iter())
                    {
                        let v = dxk + dky;
                        if v < *rv {
                            *rv = v;
                            *vv = kg;
                        }
                    }
                }
                if let Some(rate) = self.update_sec_per_op {
                    comm.advance(rate * (m * m) as f64);
                }
            }
            (r, c, tile, via, comm.stats())
        });

        let mut out = Matrix::filled(n, INF);
        let mut vias = vec![NO_VIA; n * n];
        let mut stats = Vec::with_capacity(results.len());
        let mut sim = 0.0f64;
        for (r, c, tile, via, st) in results {
            for i in 0..m {
                let gi = r * m + i;
                if gi >= n {
                    continue;
                }
                for j in 0..m {
                    let gj = c * m + j;
                    if gj < n {
                        out.set(gi, gj, tile[i * m + j]);
                        vias[gi * n + gj] = via[i * m + j];
                    }
                }
            }
            sim = sim.max(st.elapsed);
            stats.push(st);
        }
        Ok((
            MpiRunResult {
                distances: out,
                stats,
                simulated_comm_s: sim,
            },
            apsp_graph::paths::ParentMatrix::from_vias(n, vias),
        ))
    }

    /// Solves APSP for a dense symmetric adjacency matrix.
    pub fn solve_matrix(&self, adjacency: &Matrix) -> Result<MpiRunResult, ApspError> {
        let g = self.grid;
        if g == 0 {
            return Err(ApspError::InvalidConfig("grid must be positive".into()));
        }
        let n = adjacency.order();
        if n == 0 {
            return Err(ApspError::InvalidInput("empty graph".into()));
        }
        // Pad to a multiple of the grid with isolated vertices.
        let m = n.div_ceil(g); // tile side
        let np = m * g;

        let tile_of = |r: usize, c: usize| -> Vec<f64> {
            let mut t = vec![INF; m * m];
            for i in 0..m {
                let gi = r * m + i;
                for j in 0..m {
                    let gj = c * m + j;
                    t[i * m + j] = if gi < n && gj < n {
                        adjacency.get(gi, gj)
                    } else if gi == gj {
                        0.0
                    } else {
                        INF
                    };
                }
            }
            t
        };

        let world = World::new(g * g, self.cost);
        let results = world.run(|comm| {
            let rank = comm.rank();
            let (r, c) = (rank / g, rank % g);
            let mut tile = tile_of(r, c);

            for k in 0..np {
                let owner = k / m;
                let kloc = k % m;
                // Pivot-row segment for my column range: held by (owner, c).
                let row_seg: Vec<f64> = if r == owner {
                    let seg: Vec<f64> = tile[kloc * m..kloc * m + m].to_vec();
                    // Flat-tree broadcast down grid column c.
                    for dest_r in 0..g {
                        if dest_r != r {
                            comm.send_vec(dest_r * g + c, (2 * k) as u64, seg.clone());
                        }
                    }
                    seg
                } else {
                    comm.recv(owner * g + c, (2 * k) as u64)
                };
                // Pivot-column segment for my row range: held by (r, owner).
                let col_seg: Vec<f64> = if c == owner {
                    let seg: Vec<f64> = (0..m).map(|i| tile[i * m + kloc]).collect();
                    for dest_c in 0..g {
                        if dest_c != c {
                            comm.send_vec(r * g + dest_c, (2 * k + 1) as u64, seg.clone());
                        }
                    }
                    seg
                } else {
                    comm.recv(r * g + owner, (2 * k + 1) as u64)
                };

                // d(x, y) = min(d(x, y), d(x, k) + d(k, y)) — branchless
                // so the rank-1 update vectorizes like the blockmat kernels.
                for (i, &dxk) in col_seg.iter().enumerate() {
                    if dxk == INF {
                        continue;
                    }
                    let row = &mut tile[i * m..i * m + m];
                    for (rv, &dky) in row.iter_mut().zip(row_seg.iter()) {
                        *rv = tropical_add(dxk + dky, *rv);
                    }
                }
                if let Some(rate) = self.update_sec_per_op {
                    comm.advance(rate * (m * m) as f64);
                }
            }
            (r, c, tile, comm.stats())
        });

        let mut out = Matrix::filled(n, INF);
        let mut stats = Vec::with_capacity(results.len());
        let mut sim = 0.0f64;
        for (r, c, tile, st) in results {
            for i in 0..m {
                let gi = r * m + i;
                if gi >= n {
                    continue;
                }
                for j in 0..m {
                    let gj = c * m + j;
                    if gj < n {
                        out.set(gi, gj, tile[i * m + j]);
                    }
                }
            }
            sim = sim.max(st.elapsed);
            stats.push(st);
        }
        Ok(MpiRunResult {
            distances: out,
            stats,
            simulated_comm_s: sim,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apsp_graph::{floyd_warshall as fw_oracle, generators};

    #[test]
    fn matches_oracle_2x2_grid() {
        let g = generators::erdos_renyi_paper(32, 0.1, 17);
        let res = MpiFw2d::new(2).solve_matrix(&g.to_dense()).unwrap();
        assert!(res.distances.approx_eq(&fw_oracle(&g), 1e-9).is_ok());
        assert_eq!(res.stats.len(), 4);
    }

    #[test]
    fn matches_oracle_4x4_grid_with_padding() {
        let g = generators::erdos_renyi_paper(30, 0.1, 23);
        let res = MpiFw2d::new(4).solve_matrix(&g.to_dense()).unwrap();
        assert!(res.distances.approx_eq(&fw_oracle(&g), 1e-9).is_ok());
    }

    #[test]
    fn single_rank_grid_is_sequential_fw() {
        let g = generators::cycle(11);
        let res = MpiFw2d::new(1).solve_matrix(&g.to_dense()).unwrap();
        assert!(res.distances.approx_eq(&fw_oracle(&g), 1e-9).is_ok());
        assert_eq!(res.stats[0].messages_sent, 0);
    }

    #[test]
    fn comm_clock_positive_on_multi_rank() {
        let g = generators::grid(5, 5);
        let res = MpiFw2d::new(2).solve_matrix(&g.to_dense()).unwrap();
        assert!(res.simulated_comm_s > 0.0);
        // Every rank broadcasts its share of pivots: all ranks send.
        for st in &res.stats {
            assert!(st.messages_sent > 0);
        }
    }

    #[test]
    fn tracked_solve_round_trips_against_dijkstra() {
        for (n, grid, seed) in [(32usize, 2usize, 17u64), (30, 4, 23), (11, 1, 0)] {
            let g = generators::erdos_renyi_paper(n, 0.1, seed);
            let adj = g.to_dense();
            let (run, parents) = MpiFw2d::new(grid).solve_matrix_paths(&adj).unwrap();
            let plain = MpiFw2d::new(grid).solve_matrix(&adj).unwrap();
            assert!(
                run.distances.approx_eq(&plain.distances, 0.0).is_ok(),
                "tracking changed distances (n={n}, grid={grid})"
            );
            let dap = apsp_graph::paths::DistancesAndParents::new(run.distances, parents);
            dap.validate_against(&adj, 1e-9)
                .unwrap_or_else(|e| panic!("n={n} grid={grid}: {e}"));
        }
    }

    #[test]
    fn weighted_graph_with_shortcuts() {
        let mut g = apsp_graph::Graph::new(9);
        for i in 0..8u32 {
            g.add_edge(i, i + 1, 10.0);
        }
        g.add_edge(0, 8, 5.0); // long chain beaten by one cheap edge
        let res = MpiFw2d::new(3).solve_matrix(&g.to_dense()).unwrap();
        assert_eq!(res.distances.get(0, 8), 5.0);
        assert_eq!(res.distances.get(1, 8), 15.0);
    }
}
