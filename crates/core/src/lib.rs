//! # apsp-core — the paper's APSP solvers
//!
//! Implements, on the [`sparklet`] dataflow engine and the [`mpilite`]
//! message-passing substrate, all six solvers evaluated in *Schoeneman &
//! Zola, "Solving All-Pairs Shortest-Paths Problem in Large Graphs Using
//! Apache Spark"* (ICPP 2019):
//!
//! | Solver | Paper | Purity | Mechanism |
//! |---|---|---|---|
//! | [`RepeatedSquaring`] | Alg. 1 | impure | min-plus `A^n` via column-block sweeps + side-channel columns |
//! | [`FloydWarshall2D`] | Alg. 2 | pure | `n` iterations, collect + broadcast of pivot column |
//! | [`BlockedInMemory`] | Alg. 3 | pure | Venkataraman blocked FW; copies disseminated by shuffles |
//! | [`BlockedCollectBroadcast`] | Alg. 4 | impure | blocked FW; copies via driver + shared storage |
//! | [`MpiFw2d`] | §5.5 | — | naive 2D Floyd-Warshall on `mpilite` |
//! | [`MpiDcApsp`] | §5.5 | — | divide-and-conquer (Kleene) APSP on `mpilite` |
//!
//! All Spark solvers share the paper's design decisions: the adjacency
//! matrix is 2D-decomposed into `q × q` blocks of side `b`, **only the
//! upper triangle is stored** (the executor owning `A_IJ` also serves
//! `A_JI` by transposition, §4), and the computational building blocks of
//! the paper's Table 1 ([`building_blocks`]) are shared across solvers.
//!
//! ## Example
//!
//! ```
//! use apsp_core::{ApspSolver, BlockedCollectBroadcast, SolverConfig};
//! use apsp_graph::generators;
//! use sparklet::{SparkConfig, SparkContext};
//!
//! let g = generators::erdos_renyi_paper(96, 0.1, 7);
//! let ctx = SparkContext::new(SparkConfig::with_cores(4));
//! let result = BlockedCollectBroadcast::default()
//!     .solve(&ctx, &g.to_dense(), &SolverConfig::new(32))
//!     .unwrap();
//! let oracle = apsp_graph::floyd_warshall(&g);
//! assert!(result.distances().approx_eq(&oracle, 1e-9).is_ok());
//! ```

#![warn(missing_docs)]

pub mod algebra;
mod blocked_cb;
mod blocked_im;
mod blocks;
pub mod building_blocks;
mod cartesian_rs;
pub mod checkpoint;
pub mod directed;
mod engine;
mod fw2d;
pub mod hierarchy;
pub mod jobs;
mod johnson_dist;
mod mpi_dc;
mod mpi_fw2d;
pub mod plan;
mod repeated_squaring;
pub mod serve;
mod solver;
pub mod store;
pub mod tuner;

pub use algebra::{AlgebraResult, AlgebraSolver};
pub use apsp_blockmat::kernels::MinPlusKernel;
pub use apsp_blockmat::{PathAlgebra, Reachability, TrackedTropical, Tropical, Widest};
pub use apsp_graph::paths::{DistancesAndParents, NodeId, ParentMatrix};
pub use blocked_cb::{BlockedCollectBroadcast, DistributedDistances};
pub use blocked_im::BlockedInMemory;
pub use blocks::{canonical, oriented, BlockKey, BlockRecord, BlockedMatrix, PartitionerChoice};
pub use cartesian_rs::CartesianSquaring;
pub use checkpoint::{CheckpointPolicy, CheckpointSignal, CheckpointSpec};
pub use directed::{DirectedBlockedCB, DirectedFloydWarshall2D, FullBlockedMatrix};
pub use fw2d::FloydWarshall2D;
pub use hierarchy::{HierarchicalClosure, HierarchyConfig, HierarchyStats};
pub use jobs::{
    solver_by_name, workload_by_name, CancelOutcome, GraphSource, JobQueue, JobSpec, JobState,
    JobStatus, QueueFull, SolutionRegistry, STORE_SOLUTION_KEY,
};
pub use johnson_dist::DistributedJohnson;
pub use mpi_dc::MpiDcApsp;
pub use mpi_fw2d::MpiFw2d;
pub use plan::{
    Capabilities, Plan, PlanNote, Problem, ResourceHints, Solution, SolverCaps, SolverId, Workload,
};
pub use repeated_squaring::RepeatedSquaring;
pub use serve::{
    answer_json, answer_query, render_text, InterruptedJob, QueryAnswer, QueryError, QueryRequest,
    ServeConfig, Server, ServerHandle, ShutdownReport,
};
pub use solver::{ApspError, ApspResult, ApspSolver, SolverConfig};
pub use store::{finalize_checkpoint, ClosureStore, DEFAULT_STORE_CACHE_BUDGET};
