//! The common solver interface, configuration, and result types.

use crate::blocks::PartitionerChoice;
use apsp_blockmat::kernels::MinPlusKernel;
use apsp_blockmat::Matrix;
use apsp_cluster::{ClusterSpec, KernelRates, SolverKind, SparkOverheads};
use apsp_graph::paths::{DistancesAndParents, ParentMatrix};
use sparklet::{MetricsSnapshot, SparkContext, SparkError};
use std::time::Duration;

/// Errors an APSP solve can fail with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ApspError {
    /// The adjacency matrix is not a valid undirected instance
    /// (asymmetric, negative weight, or nonzero diagonal).
    InvalidInput(String),
    /// Invalid configuration (e.g. zero block size).
    InvalidConfig(String),
    /// The underlying engine failed (injected fault exhausted retries,
    /// side-channel blob lost, …).
    Engine(SparkError),
    /// Checkpoint write, read, or validation failed (corrupt frame,
    /// geometry mismatch, no committed round to resume from, …).
    Checkpoint(String),
    /// Closure-store write, read, or validation failed (corrupt frame,
    /// geometry or workload mismatch, missing manifest, …).
    Store(String),
}

impl std::fmt::Display for ApspError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ApspError::InvalidInput(msg) => write!(f, "invalid input: {msg}"),
            ApspError::InvalidConfig(msg) => write!(f, "invalid config: {msg}"),
            ApspError::Engine(e) => write!(f, "engine error: {e}"),
            ApspError::Checkpoint(msg) => write!(f, "checkpoint error: {msg}"),
            ApspError::Store(msg) => write!(f, "closure-store error: {msg}"),
        }
    }
}

impl std::error::Error for ApspError {}

impl From<SparkError> for ApspError {
    fn from(e: SparkError) -> Self {
        ApspError::Engine(e)
    }
}

/// Tuning knobs shared by the Spark solvers.
#[derive(Debug, Clone)]
pub struct SolverConfig {
    /// Decomposition block side `b` (the paper's central tuning knob).
    pub block_size: usize,
    /// Number of RDD partitions; defaults to `2 × cores` per the Spark
    /// guideline the paper follows (`B = 2`).
    pub num_partitions: Option<usize>,
    /// Which partitioner distributes the blocks.
    pub partitioner: PartitionerChoice,
    /// Validate the input adjacency matrix before solving (symmetric,
    /// zero diagonal, non-negative). Costs O(n²); on by default.
    pub validate_input: bool,
    /// Which min-plus kernel the block products run on. `Auto` (default)
    /// dispatches by block side — branchless for small blocks, the packed
    /// register-blocked engine for mid sizes, rayon-parallel beyond; the
    /// explicit variants exist for ablations and benchmarks.
    pub kernel: MinPlusKernel,
    /// Track shortest-path witnesses alongside distances: every block
    /// update runs the argmin-recording kernel tier and the result carries
    /// a [`ParentMatrix`] (see [`ApspResult::parents`]). Off by default —
    /// tracking costs one `u32` per cell plus the tracked-kernel overhead
    /// measured in `EXPERIMENTS.md`.
    pub track_paths: bool,
    /// Round-granular checkpointing and resume (see
    /// [`crate::checkpoint::CheckpointSpec`]). `None` (default) runs
    /// without checkpoints.
    pub checkpoint: Option<crate::checkpoint::CheckpointSpec>,
}

impl SolverConfig {
    /// Config with block side `b` and paper defaults (MD partitioner,
    /// `B = 2`).
    pub fn new(block_size: usize) -> Self {
        SolverConfig {
            block_size,
            num_partitions: None,
            partitioner: PartitionerChoice::MultiDiagonal,
            validate_input: true,
            kernel: MinPlusKernel::Auto,
            track_paths: false,
            checkpoint: None,
        }
    }

    /// Config with the block size chosen by the closed-form tuner for an
    /// `n`-vertex problem on this context's core count (§5.2/§5.3
    /// guidance, mechanized), then routed through the cluster model's
    /// feasibility check — the same check the query planner
    /// ([`crate::plan`]) applies — against a [`ClusterSpec::local`]
    /// description of this machine, so `auto` can no longer hand back a
    /// block size the model marks infeasible when a feasible one exists.
    ///
    /// Assumes the paper's best general-purpose solver (Blocked
    /// Collect/Broadcast) for the feasibility sweep; use
    /// [`SolverConfig::auto_for`] to tune for a specific solver or
    /// cluster.
    pub fn auto(n: usize, ctx: &SparkContext) -> Self {
        Self::auto_for(
            SolverKind::BlockedCollectBroadcast,
            n,
            ctx,
            &ClusterSpec::local(ctx.num_cores()),
        )
    }

    /// [`SolverConfig::auto`] with the solver kind and cluster made
    /// explicit: suggests a block size with the closed-form heuristic,
    /// then — when the cluster model marks that size infeasible for
    /// `solver` on `spec` — re-tunes to the feasible candidate with the
    /// lowest projected total ([`crate::tuner::feasible_block_size`]).
    /// When *no* block size is feasible the closed-form suggestion is
    /// kept: the local solve is still attempted, and the planner is the
    /// layer that reports infeasibility.
    pub fn auto_for(solver: SolverKind, n: usize, ctx: &SparkContext, spec: &ClusterSpec) -> Self {
        let suggested = crate::tuner::suggest_block_size(n, ctx.num_cores(), 2).min(n.max(1));
        let b = crate::tuner::feasible_block_size(
            solver,
            n,
            spec,
            &KernelRates::paper(),
            &SparkOverheads::default(),
            suggested,
        )
        .unwrap_or(suggested);
        Self::new(b)
    }

    /// Sets an explicit partition count.
    pub fn with_partitions(mut self, partitions: usize) -> Self {
        self.num_partitions = Some(partitions);
        self
    }

    /// Sets the partitioner.
    pub fn with_partitioner(mut self, p: PartitionerChoice) -> Self {
        self.partitioner = p;
        self
    }

    /// Disables input validation (for benchmarks on trusted inputs).
    pub fn without_validation(mut self) -> Self {
        self.validate_input = false;
        self
    }

    /// Pins the min-plus kernel (default: [`MinPlusKernel::Auto`]).
    pub fn with_kernel(mut self, kernel: MinPlusKernel) -> Self {
        self.kernel = kernel;
        self
    }

    /// Enables shortest-path witness tracking: the solve returns a parent
    /// (via) matrix alongside the distances, from which any path is
    /// reconstructed in `O(length)`.
    ///
    /// ```
    /// use apsp_core::{ApspSolver, BlockedCollectBroadcast, SolverConfig};
    /// use apsp_graph::generators;
    /// use sparklet::{SparkConfig, SparkContext};
    ///
    /// let g = generators::grid(4, 4);
    /// let ctx = SparkContext::new(SparkConfig::with_cores(2));
    /// let result = BlockedCollectBroadcast::default()
    ///     .solve(&ctx, &g.to_dense(), &SolverConfig::new(8).with_paths())
    ///     .unwrap();
    /// let paths = result.into_paths().expect("tracking was requested");
    /// let route = paths.reconstruct(0, 15).expect("grid is connected");
    /// assert_eq!(route.first(), Some(&0));
    /// assert_eq!(route.last(), Some(&15));
    /// ```
    pub fn with_paths(mut self) -> Self {
        self.track_paths = true;
        self
    }

    /// Enables round-granular checkpointing (and, when
    /// `spec.resume` is set, resuming) under `spec`.
    pub fn with_checkpoints(mut self, spec: crate::checkpoint::CheckpointSpec) -> Self {
        self.checkpoint = Some(spec);
        self
    }

    /// Effective partition count for a context.
    pub fn partitions_for(&self, ctx: &SparkContext) -> usize {
        self.num_partitions.unwrap_or(2 * ctx.num_cores()).max(1)
    }

    pub(crate) fn check(&self, n: usize) -> Result<(), ApspError> {
        if self.block_size == 0 {
            return Err(ApspError::InvalidConfig(
                "block size must be positive".into(),
            ));
        }
        if n == 0 {
            return Err(ApspError::InvalidInput("empty graph".into()));
        }
        Ok(())
    }
}

/// Outcome of a solve: the distance matrix plus observability, and — when
/// the config asked for it — the parent matrix for path reconstruction.
#[derive(Debug, Clone)]
pub struct ApspResult {
    distances: Matrix,
    parents: Option<ParentMatrix>,
    /// Engine-counter increments attributable to this solve.
    pub metrics: MetricsSnapshot,
    /// Wall-clock duration of the solve.
    pub elapsed: Duration,
    /// Outer iterations executed (sweeps for RS, `n` for FW2D, `q` for
    /// the blocked solvers, 1 for the MPI baselines).
    pub iterations: u64,
}

impl ApspResult {
    pub(crate) fn new(
        distances: Matrix,
        metrics: MetricsSnapshot,
        elapsed: Duration,
        iterations: u64,
    ) -> Self {
        ApspResult {
            distances,
            parents: None,
            metrics,
            elapsed,
            iterations,
        }
    }

    pub(crate) fn with_parents(mut self, parents: ParentMatrix) -> Self {
        self.parents = Some(parents);
        self
    }

    /// The full `n × n` shortest-path length matrix.
    pub fn distances(&self) -> &Matrix {
        &self.distances
    }

    /// The parent (via) matrix, when the solve ran under
    /// [`SolverConfig::with_paths`].
    pub fn parents(&self) -> Option<&ParentMatrix> {
        self.parents.as_ref()
    }

    /// Consumes the result, returning the distance matrix.
    pub fn into_distances(self) -> Matrix {
        self.distances
    }

    /// Consumes the result into a [`DistancesAndParents`] handle for path
    /// reconstruction; `None` unless the solve ran under
    /// [`SolverConfig::with_paths`].
    pub fn into_paths(self) -> Option<DistancesAndParents> {
        let parents = self.parents?;
        Some(DistancesAndParents::new(self.distances, parents))
    }

    /// Consumes the result into the distance matrix plus the parent
    /// matrix when one was tracked — the panic-free splitter the query
    /// layer builds [`crate::plan::Solution`] from.
    pub fn into_distances_and_parents(self) -> (Matrix, Option<ParentMatrix>) {
        (self.distances, self.parents)
    }
}

/// A distributed APSP solver over an undirected weighted graph given as a
/// dense adjacency matrix (`0` diagonal, [`apsp_blockmat::INF`] non-edges).
pub trait ApspSolver {
    /// Human-readable solver name (matches the paper's tables).
    fn name(&self) -> &'static str;

    /// Whether the implementation stays within the fault-tolerant engine
    /// API (the paper's pure/impure distinction, §3).
    fn is_pure(&self) -> bool;

    /// Solves APSP, returning the distance matrix and run metadata.
    fn solve(
        &self,
        ctx: &SparkContext,
        adjacency: &Matrix,
        cfg: &SolverConfig,
    ) -> Result<ApspResult, ApspError>;
}

/// Input validation shared by the solvers.
pub(crate) fn validate_adjacency(m: &Matrix) -> Result<(), ApspError> {
    apsp_graph::validate_adjacency(m).map_err(ApspError::InvalidInput)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparklet::SparkConfig;

    #[test]
    fn config_defaults() {
        let ctx = SparkContext::new(SparkConfig::with_cores(3));
        let cfg = SolverConfig::new(64);
        assert_eq!(cfg.partitions_for(&ctx), 6);
        assert_eq!(
            SolverConfig::new(64)
                .with_partitions(10)
                .partitions_for(&ctx),
            10
        );
    }

    #[test]
    fn auto_config_is_usable() {
        let ctx = SparkContext::new(SparkConfig::with_cores(4));
        let cfg = SolverConfig::auto(500, &ctx);
        assert!(cfg.block_size >= 1 && cfg.block_size <= 500);
        assert!(cfg.check(500).is_ok());
        // Enough blocks for the configured parallelism.
        let q = 500usize.div_ceil(cfg.block_size);
        assert!(q * (q + 1) / 2 >= 8, "q={q} too coarse for 4 cores × B=2");
    }

    #[test]
    fn auto_config_respects_memory_feasibility() {
        // Regression: `auto` used to be closed-form only, happily
        // suggesting block sizes whose padded working set overflows the
        // cluster model's RAM. On a 10 MiB machine the n=1000 closed-form
        // suggestion (b=500, 12 MB resident) must be re-tuned to a
        // feasible size.
        use apsp_cluster::{project, Workload};
        let ctx = SparkContext::new(SparkConfig::with_cores(1));
        let mut spec = ClusterSpec::local(1);
        spec.ram_per_node_bytes = 10 << 20;
        let closed_form = crate::tuner::suggest_block_size(1000, 1, 2).min(1000);
        assert_eq!(closed_form, 500, "test premise: closed form picks b=500");
        let cfg = SolverConfig::auto_for(SolverKind::BlockedCollectBroadcast, 1000, &ctx, &spec);
        assert_ne!(cfg.block_size, closed_form);
        let w = Workload::paper_default(1000, cfg.block_size);
        assert!(
            project(
                SolverKind::BlockedCollectBroadcast,
                &w,
                &spec,
                &KernelRates::paper(),
                &SparkOverheads::default()
            )
            .feasibility
            .is_feasible(),
            "auto_for must return a model-feasible block size"
        );
        // On an unconstrained machine `auto` still equals the closed form.
        let roomy = SolverConfig::auto(1000, &ctx);
        assert_eq!(roomy.block_size, closed_form);
    }

    #[test]
    fn config_checks() {
        assert!(SolverConfig::new(0).check(10).is_err());
        assert!(SolverConfig::new(4).check(0).is_err());
        assert!(SolverConfig::new(4).check(10).is_ok());
    }

    #[test]
    fn invalid_input_detected() {
        let mut m = Matrix::identity(3);
        m.set(0, 1, 2.0); // asymmetric: (1,0) stays INF
        assert!(matches!(
            validate_adjacency(&m),
            Err(ApspError::InvalidInput(_))
        ));
    }
}
