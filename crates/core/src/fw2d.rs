//! Algorithm 2: 2D-decomposed Floyd-Warshall (the "pure" solver).

use crate::blocks::{BlockRecord, BlockedMatrix};
use crate::building_blocks::{extract_col, in_column};
use crate::solver::{validate_adjacency, ApspError, ApspResult, ApspSolver, SolverConfig};
use apsp_blockmat::{Matrix, INF};
use sparklet::{Rdd, SparkContext};
use std::time::Instant;

/// The paper's Algorithm 2: `n` iterations; in iteration `k` the pivot
/// column is extracted (`InColumn` + `ExtractCol`), collected at the
/// driver, broadcast, and every block applies the rank-1
/// `FloydWarshallUpdate`.
///
/// Pure: only fault-tolerant engine primitives are used — no side
/// channel, no wide shuffles. The price is `n` synchronization points,
/// which is what makes it uncompetitive at scale (Table 2: projected
/// ~50+ days at `n = 262144`).
#[derive(Debug, Default, Clone)]
pub struct FloydWarshall2D;

impl ApspSolver for FloydWarshall2D {
    fn name(&self) -> &'static str {
        "2D Floyd-Warshall"
    }

    fn is_pure(&self) -> bool {
        true
    }

    fn solve(
        &self,
        ctx: &SparkContext,
        adjacency: &Matrix,
        cfg: &SolverConfig,
    ) -> Result<ApspResult, ApspError> {
        if cfg.track_paths {
            return crate::tracked::solve_fw2d(ctx, adjacency, cfg);
        }
        let n = adjacency.order();
        cfg.check(n)?;
        if cfg.validate_input {
            validate_adjacency(adjacency)?;
        }
        let start = Instant::now();
        let metrics_before = ctx.metrics();

        let b = cfg.block_size;
        let partitioner = cfg
            .partitioner
            .build(n.div_ceil(b), cfg.partitions_for(ctx));
        let blocked = BlockedMatrix::from_matrix(ctx, adjacency, b, partitioner);
        let q = blocked.q;
        let mut a: Rdd<BlockRecord> = blocked.rdd.clone().persist();
        let mut prev: Option<Rdd<BlockRecord>> = None;

        for k in 0..n {
            let pivot_block = k / b;
            let k_local = k % b;

            // Extract and collect the pivot column (lines 2–6 of Alg. 2).
            let segments = a
                .filter(move |(key, _)| in_column(key, pivot_block))
                .flat_map(move |rec| extract_col(&rec, pivot_block, k_local))
                .collect()?;
            let mut column = vec![INF; q * b];
            for (row_block, values) in segments {
                column[row_block * b..row_block * b + b].copy_from_slice(&values);
            }
            // Broadcast to the executors (line 8).
            let bcast = ctx.broadcast(column);

            // FloydWarshallUpdate on every block (line 10), exploiting
            // symmetry: column[x] = d(x, k) = d(k, x).
            let col = bcast.clone();
            let next = a
                .map(move |((i, j), mut blk)| {
                    let col_i = &col.value()[i * b..i * b + b];
                    let col_j = &col.value()[j * b..j * b + b];
                    blk.fw_update_outer(col_i, col_j);
                    ((i, j), blk)
                })
                .persist();

            // `a` was fully materialized by the column job; retire the
            // generation before it to keep memory at ~two generations.
            if let Some(old) = prev.take() {
                old.unpersist();
            }
            prev = Some(a);
            a = next;
        }

        let result = blocked.with_rdd(a).collect_to_matrix()?;
        let metrics = ctx.metrics().delta(&metrics_before);
        Ok(ApspResult::new(result, metrics, start.elapsed(), n as u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apsp_graph::{floyd_warshall, generators};
    use sparklet::SparkConfig;

    fn ctx() -> SparkContext {
        SparkContext::new(SparkConfig::with_cores(4))
    }

    #[test]
    fn matches_oracle_on_random_graph() {
        let g = generators::erdos_renyi_paper(60, 0.1, 21);
        let res = FloydWarshall2D
            .solve(&ctx(), &g.to_dense(), &SolverConfig::new(16))
            .unwrap();
        let oracle = floyd_warshall(&g);
        assert!(res.distances().approx_eq(&oracle, 1e-9).is_ok());
        assert_eq!(res.iterations, 60);
    }

    #[test]
    fn handles_block_size_larger_than_n() {
        let g = generators::cycle(10);
        let res = FloydWarshall2D
            .solve(&ctx(), &g.to_dense(), &SolverConfig::new(32))
            .unwrap();
        assert!(res.distances().approx_eq(&floyd_warshall(&g), 1e-9).is_ok());
    }

    #[test]
    fn handles_uneven_blocks() {
        let g = generators::erdos_renyi_paper(37, 0.1, 3);
        let res = FloydWarshall2D
            .solve(&ctx(), &g.to_dense(), &SolverConfig::new(8))
            .unwrap();
        assert!(res.distances().approx_eq(&floyd_warshall(&g), 1e-9).is_ok());
    }

    #[test]
    fn disconnected_components_stay_infinite() {
        let mut g = apsp_graph::Graph::new(8);
        g.add_edge(0, 1, 1.0);
        g.add_edge(2, 3, 2.0);
        let res = FloydWarshall2D
            .solve(&ctx(), &g.to_dense(), &SolverConfig::new(4))
            .unwrap();
        assert_eq!(res.distances().get(0, 2), INF);
        assert_eq!(res.distances().get(1, 0), 1.0);
    }

    #[test]
    fn no_shuffles_no_side_channel() {
        // Purity, quantified: FW2D uses neither shuffles nor the side
        // channel, only collect + broadcast.
        let sc = ctx();
        let g = generators::erdos_renyi_paper(32, 0.1, 5);
        let res = FloydWarshall2D
            .solve(&sc, &g.to_dense(), &SolverConfig::new(8))
            .unwrap();
        assert_eq!(res.metrics.shuffles, 0);
        assert_eq!(res.metrics.side_channel_writes, 0);
        assert!(res.metrics.broadcast_bytes > 0);
        assert_eq!(res.metrics.jobs, 32 + 1); // one collect per k + final
    }
}
