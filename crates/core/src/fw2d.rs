//! Algorithm 2: 2D-decomposed Floyd-Warshall (the "pure" solver).

use crate::engine::{self, AlgRun};
use crate::solver::{validate_adjacency, ApspError, ApspResult, ApspSolver, SolverConfig};
use apsp_blockmat::{Matrix, TrackedTropical, Tropical};
use sparklet::SparkContext;
use std::time::Instant;

/// The paper's Algorithm 2: `n` iterations; in iteration `k` the pivot
/// column is extracted (`InColumn` + `ExtractCol`), collected at the
/// driver, broadcast, and every block applies the rank-1
/// `FloydWarshallUpdate`.
///
/// Pure: only fault-tolerant engine primitives are used — no side
/// channel, no wide shuffles. The price is `n` synchronization points,
/// which is what makes it uncompetitive at scale (Table 2: projected
/// ~50+ days at `n = 262144`).
///
/// The algorithm itself lives in the crate-private `engine` module generically; this
/// front-end instantiates it with [`Tropical`] (plain APSP) or
/// [`TrackedTropical`] (`with_paths`).
#[derive(Debug, Default, Clone)]
pub struct FloydWarshall2D;

impl ApspSolver for FloydWarshall2D {
    fn name(&self) -> &'static str {
        "2D Floyd-Warshall"
    }

    fn is_pure(&self) -> bool {
        true
    }

    fn solve(
        &self,
        ctx: &SparkContext,
        adjacency: &Matrix,
        cfg: &SolverConfig,
    ) -> Result<ApspResult, ApspError> {
        if cfg.track_paths {
            return engine::solve_tracked(
                ctx,
                adjacency,
                cfg,
                engine::solve_fw2d::<TrackedTropical>,
            );
        }
        let n = adjacency.order();
        cfg.check(n)?;
        if cfg.validate_input {
            validate_adjacency(adjacency)?;
        }
        let start = Instant::now();
        let metrics_before = ctx.metrics();

        let run: AlgRun<Tropical> = engine::solve_fw2d(ctx, n, &|i, j| adjacency.get(i, j), cfg)?;
        let (vals, _) = run.collect_dense()?;

        let metrics = ctx.metrics().delta(&metrics_before);
        Ok(ApspResult::new(
            Matrix::from_vec(n, vals),
            metrics,
            start.elapsed(),
            run.iterations,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apsp_blockmat::INF;
    use apsp_graph::{floyd_warshall, generators};
    use sparklet::SparkConfig;

    fn ctx() -> SparkContext {
        SparkContext::new(SparkConfig::with_cores(4))
    }

    #[test]
    fn matches_oracle_on_random_graph() {
        let g = generators::erdos_renyi_paper(60, 0.1, 21);
        let res = FloydWarshall2D
            .solve(&ctx(), &g.to_dense(), &SolverConfig::new(16))
            .unwrap();
        let oracle = floyd_warshall(&g);
        assert!(res.distances().approx_eq(&oracle, 1e-9).is_ok());
        assert_eq!(res.iterations, 60);
    }

    #[test]
    fn handles_block_size_larger_than_n() {
        let g = generators::cycle(10);
        let res = FloydWarshall2D
            .solve(&ctx(), &g.to_dense(), &SolverConfig::new(32))
            .unwrap();
        assert!(res.distances().approx_eq(&floyd_warshall(&g), 1e-9).is_ok());
    }

    #[test]
    fn handles_uneven_blocks() {
        let g = generators::erdos_renyi_paper(37, 0.1, 3);
        let res = FloydWarshall2D
            .solve(&ctx(), &g.to_dense(), &SolverConfig::new(8))
            .unwrap();
        assert!(res.distances().approx_eq(&floyd_warshall(&g), 1e-9).is_ok());
    }

    #[test]
    fn disconnected_components_stay_infinite() {
        let mut g = apsp_graph::Graph::new(8);
        g.add_edge(0, 1, 1.0);
        g.add_edge(2, 3, 2.0);
        let res = FloydWarshall2D
            .solve(&ctx(), &g.to_dense(), &SolverConfig::new(4))
            .unwrap();
        assert_eq!(res.distances().get(0, 2), INF);
        assert_eq!(res.distances().get(1, 0), 1.0);
    }

    #[test]
    fn no_shuffles_no_side_channel() {
        // Purity, quantified: FW2D uses neither shuffles nor the side
        // channel, only collect + broadcast.
        let sc = ctx();
        let g = generators::erdos_renyi_paper(32, 0.1, 5);
        let res = FloydWarshall2D
            .solve(&sc, &g.to_dense(), &SolverConfig::new(8))
            .unwrap();
        assert_eq!(res.metrics.shuffles, 0);
        assert_eq!(res.metrics.side_channel_writes, 0);
        assert!(res.metrics.broadcast_bytes > 0);
        assert_eq!(res.metrics.jobs, 32 + 1); // one collect per k + final
    }
}
