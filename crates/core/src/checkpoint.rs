//! Round-granular checkpoint/resume for the engine loops.
//!
//! Every engine skeleton (`core::engine`) advances the distributed
//! matrix in discrete rounds (`q` pivot iterations for the blocked
//! solvers, `n` pivots for FW2D, `⌈log₂ n⌉` squarings for RS) with a
//! well-defined barrier at the end of each: the reassembled RDD `A` after
//! `next.count()` is the *complete* state of the solve — everything else
//! (staged side-channel copies, broadcasts) is derived per round.
//!
//! A [`CheckpointSpec`] on [`SolverConfig`] makes
//! the engine snapshot that state into its own [`sparklet::SideChannel`]
//! directory at the barrier. The on-disk layout is:
//!
//! ```text
//! <dir>/ckpt-<round>-<bi>-<bj>   framed block: u32 bi, u32 bj, AlgBlock wire bytes
//! <dir>/ckpt-meta-<round>        framed manifest: solver, algebra, geometry, round
//! ```
//!
//! Every blob is a [`frame`] — magic, version, kind, length, FNV-1a
//! checksum — so torn or bit-rotted checkpoints surface as typed
//! [`ApspError::Checkpoint`] errors rather than garbage resumes. The
//! **manifest is written last** and is the commit point: a round without
//! its manifest is invisible to resume, so a crash mid-snapshot can at
//! worst waste the partial blobs (pruned by the next successful
//! checkpoint), never corrupt a resume.

use crate::engine::AlgRecord;
use crate::solver::{ApspError, SolverConfig};
use apsp_blockmat::serialize::{
    frame, unframe, DecodeError, FRAME_KIND_BLOCK, FRAME_KIND_MANIFEST,
};
use apsp_blockmat::{AlgBlock, PathAlgebra};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use sparklet::{Rdd, SideChannel, SparkContext};
use std::marker::PhantomData;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A cooperative checkpoint request flag for
/// [`CheckpointPolicy::OnSignal`]: share one handle with the solve and
/// call [`request`](CheckpointSignal::request) from any thread (a signal
/// handler, a deadline timer); the engine snapshots at the next round
/// barrier and clears the flag.
#[derive(Clone, Debug, Default)]
pub struct CheckpointSignal(Arc<AtomicBool>);

impl CheckpointSignal {
    /// A fresh, un-requested signal.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests a checkpoint at the next round barrier.
    pub fn request(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    /// True while a request is pending (not yet consumed by a barrier).
    pub fn is_requested(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }

    fn take(&self) -> bool {
        self.0.swap(false, Ordering::SeqCst)
    }
}

/// When the engine snapshots.
#[derive(Clone, Debug, Default)]
pub enum CheckpointPolicy {
    /// Never snapshot (resume-only specs).
    #[default]
    Off,
    /// Snapshot after every `k`-th round (`k ≥ 1`).
    EveryRounds(usize),
    /// Snapshot at the next round barrier after the signal fires.
    OnSignal(CheckpointSignal),
}

impl CheckpointPolicy {
    fn should_snapshot(&self, round: usize) -> bool {
        match self {
            CheckpointPolicy::Off => false,
            CheckpointPolicy::EveryRounds(k) => *k > 0 && (round + 1).is_multiple_of(*k),
            CheckpointPolicy::OnSignal(sig) => sig.take(),
        }
    }
}

/// Checkpoint/resume configuration carried on
/// [`SolverConfig::checkpoint`](crate::SolverConfig::checkpoint).
#[derive(Clone, Debug)]
pub struct CheckpointSpec {
    /// Directory backing the checkpoint side channel.
    pub dir: PathBuf,
    /// When to snapshot.
    pub policy: CheckpointPolicy,
    /// Restore the latest committed round from `dir` before solving and
    /// continue from the round after it.
    pub resume: bool,
}

impl CheckpointSpec {
    /// Snapshot every `k` rounds into `dir`; no resume.
    pub fn every(dir: impl Into<PathBuf>, k: usize) -> Self {
        CheckpointSpec {
            dir: dir.into(),
            policy: CheckpointPolicy::EveryRounds(k),
            resume: false,
        }
    }

    /// Snapshot when `signal` fires; no resume.
    pub fn on_signal(dir: impl Into<PathBuf>, signal: CheckpointSignal) -> Self {
        CheckpointSpec {
            dir: dir.into(),
            policy: CheckpointPolicy::OnSignal(signal),
            resume: false,
        }
    }

    /// Resume from the latest committed round in `dir` without writing
    /// further checkpoints.
    pub fn resume_from(dir: impl Into<PathBuf>) -> Self {
        CheckpointSpec {
            dir: dir.into(),
            policy: CheckpointPolicy::Off,
            resume: true,
        }
    }

    /// Also resume from `dir` if it holds a committed round (keeps the
    /// snapshot policy, so resumed runs stay protected).
    pub fn and_resume(mut self) -> Self {
        self.resume = true;
        self
    }
}

pub(crate) fn meta_key(round: usize) -> String {
    format!("ckpt-meta-{round}")
}

pub(crate) fn block_key(round: usize, bi: usize, bj: usize) -> String {
    format!("ckpt-{round}-{bi}-{bj}")
}

/// Geometry + identity stamped into every manifest; resume refuses to
/// restore a snapshot whose manifest disagrees with the live solve.
/// `pub(crate)` so the closure store can finalize a finished checkpoint
/// directory without re-solving ([`crate::store`]).
#[derive(Debug, PartialEq, Eq)]
pub(crate) struct Manifest {
    pub(crate) solver: String,
    pub(crate) algebra: String,
    pub(crate) tracks: bool,
    pub(crate) n: u64,
    pub(crate) b: u64,
    pub(crate) q: u64,
    pub(crate) total_rounds: u64,
    pub(crate) round: u64,
    pub(crate) block_count: u64,
}

impl Manifest {
    fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(64 + self.solver.len() + self.algebra.len());
        buf.put_u32_le(self.solver.len() as u32);
        buf.put_slice(self.solver.as_bytes());
        buf.put_u32_le(self.algebra.len() as u32);
        buf.put_slice(self.algebra.as_bytes());
        buf.put_u8(self.tracks as u8);
        for v in [
            self.n,
            self.b,
            self.q,
            self.total_rounds,
            self.round,
            self.block_count,
        ] {
            buf.put_u64_le(v);
        }
        buf.freeze()
    }

    pub(crate) fn decode(mut body: &[u8]) -> Result<Self, DecodeError> {
        let string = |body: &mut &[u8]| -> Result<String, DecodeError> {
            if body.remaining() < 4 {
                return Err(DecodeError::Truncated {
                    expected: 4,
                    actual: body.remaining(),
                });
            }
            let len = body.get_u32_le() as usize;
            if body.remaining() < len {
                return Err(DecodeError::Truncated {
                    expected: len,
                    actual: body.remaining(),
                });
            }
            Ok(String::from_utf8_lossy(body.take_bytes(len)).into_owned())
        };
        let solver = string(&mut body)?;
        let algebra = string(&mut body)?;
        if body.remaining() < 1 + 6 * 8 {
            return Err(DecodeError::Truncated {
                expected: 1 + 6 * 8,
                actual: body.remaining(),
            });
        }
        let tracks = body.get_u8() != 0;
        let mut word = || body.get_u64_le();
        Ok(Manifest {
            solver,
            algebra,
            tracks,
            n: word(),
            b: word(),
            q: word(),
            total_rounds: word(),
            round: word(),
            block_count: word(),
        })
    }
}

fn decode_err(what: &str, key: &str, e: DecodeError) -> ApspError {
    ApspError::Checkpoint(format!(
        "{what} '{key}' is not a valid checkpoint frame: {e}"
    ))
}

/// The engine-side checkpoint driver: one per solve, inactive (all
/// methods no-ops) unless the config carries a [`CheckpointSpec`].
pub(crate) struct Checkpointer<A: PathAlgebra> {
    inner: Option<Inner>,
    _algebra: PhantomData<fn() -> A>,
}

struct Inner {
    ctx: SparkContext,
    store: SideChannel,
    policy: CheckpointPolicy,
    solver: &'static str,
    n: usize,
    b: usize,
    q: usize,
    total_rounds: usize,
}

impl<A: PathAlgebra> Checkpointer<A> {
    /// Builds the driver for one solve. When the spec asks for resume and
    /// `dir` holds a committed round of matching geometry, also returns
    /// `(last_round, records)` — the engine seeds its loop RDD from the
    /// records and starts at `last_round + 1`.
    #[allow(clippy::type_complexity)]
    pub fn prepare(
        ctx: &SparkContext,
        cfg: &SolverConfig,
        solver: &'static str,
        n: usize,
        b: usize,
        q: usize,
        total_rounds: usize,
    ) -> Result<(Self, Option<(usize, Vec<AlgRecord<A>>)>), ApspError> {
        let Some(spec) = &cfg.checkpoint else {
            return Ok((
                Checkpointer {
                    inner: None,
                    _algebra: PhantomData,
                },
                None,
            ));
        };
        let store = ctx.open_side_channel(&spec.dir)?;
        let inner = Inner {
            ctx: ctx.clone(),
            store,
            policy: spec.policy.clone(),
            solver,
            n,
            b,
            q,
            total_rounds,
        };
        let resumed = if spec.resume {
            Some(inner.restore::<A>(&spec.dir)?)
        } else {
            None
        };
        if let Some((round, _)) = &resumed {
            ctx.note_rounds_resumed(*round as u64 + 1);
        }
        Ok((
            Checkpointer {
                inner: Some(inner),
                _algebra: PhantomData,
            },
            resumed,
        ))
    }

    /// Round barrier hook: when the policy fires for `round`, snapshots
    /// the reassembled RDD (blocks first, manifest last — the commit
    /// point) and prunes every older committed round.
    pub fn after_round(&self, round: usize, a: &Rdd<AlgRecord<A>>) -> Result<(), ApspError> {
        let Some(inner) = &self.inner else {
            return Ok(());
        };
        if !inner.policy.should_snapshot(round) {
            return Ok(());
        }
        let records = a.collect()?;
        let mut bytes_written = 0u64;
        for ((bi, bj), ab) in &records {
            let wire = ab.to_wire_bytes();
            let mut body = BytesMut::with_capacity(8 + wire.len());
            body.put_u32_le(*bi as u32);
            body.put_u32_le(*bj as u32);
            body.put_slice(&wire);
            let framed = frame(FRAME_KIND_BLOCK, &body);
            bytes_written += framed.len() as u64;
            inner.store.put_bytes(block_key(round, *bi, *bj), framed)?;
        }
        let manifest = Manifest {
            solver: inner.solver.to_string(),
            algebra: A::NAME.to_string(),
            tracks: A::TRACKS,
            n: inner.n as u64,
            b: inner.b as u64,
            q: inner.q as u64,
            total_rounds: inner.total_rounds as u64,
            round: round as u64,
            block_count: records.len() as u64,
        };
        let framed = frame(FRAME_KIND_MANIFEST, &manifest.encode());
        bytes_written += framed.len() as u64;
        inner.store.put_bytes(meta_key(round), framed)?;
        inner.ctx.note_checkpoint(bytes_written);
        inner.prune(round);
        Ok(())
    }
}

impl Inner {
    /// Latest committed round in the store, by manifest key.
    fn latest_round(&self) -> Option<usize> {
        self.store
            .keys()
            .iter()
            .filter_map(|k| k.strip_prefix("ckpt-meta-")?.parse::<usize>().ok())
            .max()
    }

    fn restore<A: PathAlgebra>(&self, dir: &Path) -> Result<(usize, Vec<AlgRecord<A>>), ApspError> {
        let round = self.latest_round().ok_or_else(|| {
            ApspError::Checkpoint(format!(
                "no committed checkpoint round under '{}'",
                dir.display()
            ))
        })?;
        let mkey = meta_key(round);
        let raw = self.store.get_bytes(&mkey)?;
        let (kind, body) =
            unframe(&raw).map_err(|e| decode_err("checkpoint manifest", &mkey, e))?;
        if kind != FRAME_KIND_MANIFEST {
            return Err(decode_err(
                "checkpoint manifest",
                &mkey,
                DecodeError::BadKind(kind),
            ));
        }
        let manifest =
            Manifest::decode(body).map_err(|e| decode_err("checkpoint manifest", &mkey, e))?;
        let expected = Manifest {
            solver: self.solver.to_string(),
            algebra: A::NAME.to_string(),
            tracks: A::TRACKS,
            n: self.n as u64,
            b: self.b as u64,
            q: self.q as u64,
            total_rounds: self.total_rounds as u64,
            round: round as u64,
            block_count: (self.q * (self.q + 1) / 2) as u64,
        };
        if manifest != expected {
            return Err(ApspError::Checkpoint(format!(
                "checkpoint '{mkey}' does not match this solve: \
                 snapshot is {manifest:?}, solve expects {expected:?}"
            )));
        }
        let mut records = Vec::with_capacity(self.q * (self.q + 1) / 2);
        for bi in 0..self.q {
            for bj in bi..self.q {
                let bkey = block_key(round, bi, bj);
                let raw = self.store.get_bytes(&bkey)?;
                let (kind, mut body) =
                    unframe(&raw).map_err(|e| decode_err("checkpoint block", &bkey, e))?;
                if kind != FRAME_KIND_BLOCK {
                    return Err(decode_err(
                        "checkpoint block",
                        &bkey,
                        DecodeError::BadKind(kind),
                    ));
                }
                if body.remaining() < 8 {
                    return Err(decode_err(
                        "checkpoint block",
                        &bkey,
                        DecodeError::Truncated {
                            expected: 8,
                            actual: body.remaining(),
                        },
                    ));
                }
                let (got_bi, got_bj) = (body.get_u32_le() as usize, body.get_u32_le() as usize);
                if (got_bi, got_bj) != (bi, bj) {
                    return Err(ApspError::Checkpoint(format!(
                        "checkpoint block '{bkey}' is keyed ({bi}, {bj}) \
                         but stamped ({got_bi}, {got_bj})"
                    )));
                }
                let ab = AlgBlock::<A>::from_wire_bytes(body)
                    .map_err(|e| decode_err("checkpoint block", &bkey, e))?;
                records.push(((bi, bj), ab));
            }
        }
        Ok((round, records))
    }

    /// Drops every committed round older than `current` (blocks and
    /// manifest). Enumerating keys by geometry keeps this independent of
    /// the backend's listing order.
    fn prune(&self, current: usize) {
        let older: Vec<usize> = self
            .store
            .keys()
            .iter()
            .filter_map(|k| k.strip_prefix("ckpt-meta-")?.parse::<usize>().ok())
            .filter(|r| *r < current)
            .collect();
        for round in older {
            for bi in 0..self.q {
                for bj in bi..self.q {
                    self.store.remove(&block_key(round, bi, bj));
                }
            }
            self.store.remove(&meta_key(round));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signal_is_consumed_by_take() {
        let sig = CheckpointSignal::new();
        assert!(!sig.is_requested());
        sig.request();
        assert!(sig.is_requested());
        let policy = CheckpointPolicy::OnSignal(sig.clone());
        assert!(policy.should_snapshot(0));
        assert!(!policy.should_snapshot(1), "take() must clear the flag");
        assert!(!sig.is_requested());
    }

    #[test]
    fn every_k_rounds_fires_on_multiples() {
        let p = CheckpointPolicy::EveryRounds(3);
        let fired: Vec<usize> = (0..9).filter(|r| p.should_snapshot(*r)).collect();
        assert_eq!(fired, vec![2, 5, 8]);
        assert!(!CheckpointPolicy::EveryRounds(0).should_snapshot(0));
        assert!(!CheckpointPolicy::Off.should_snapshot(0));
    }

    #[test]
    fn manifest_roundtrips() {
        let m = Manifest {
            solver: "cb".into(),
            algebra: "tropical".into(),
            tracks: true,
            n: 512,
            b: 128,
            q: 4,
            total_rounds: 4,
            round: 2,
            block_count: 10,
        };
        let decoded = Manifest::decode(&m.encode()).unwrap();
        assert_eq!(decoded, m);
    }

    #[test]
    fn truncated_manifest_is_typed() {
        let m = Manifest {
            solver: "rs".into(),
            algebra: "widest".into(),
            tracks: false,
            n: 64,
            b: 16,
            q: 4,
            total_rounds: 6,
            round: 0,
            block_count: 10,
        };
        let enc = m.encode();
        for cut in [0, 3, 5, enc.len() - 1] {
            assert!(matches!(
                Manifest::decode(&enc[..cut]),
                Err(DecodeError::Truncated { .. })
            ));
        }
    }
}
