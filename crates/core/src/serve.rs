//! APSP-as-a-service: an HTTP/1.1 query server fronting [`crate::plan`].
//!
//! The paper's premise is that the expensive closure is computed once and
//! amortized across many downstream uses. This module is that
//! amortization made operational: a long-running server that mounts a
//! committed closure store (PR 8) and answers `dist`/`path`/`k-nearest`/
//! `submatrix`/`reachable` *point queries* at memory speed to many
//! concurrent clients, while long full solves run as *jobs* on a bounded
//! queue (`POST /solve` → id, `GET /jobs/<id>` → status, `DELETE` →
//! cancel) that rejects with `429` when full — backpressure, not
//! unbounded buffering.
//!
//! The workspace is offline and shim-based (no tokio/actix, no Condvar in
//! the `parking_lot` shim), so the transport is deliberately small: a
//! hand-rolled request/response layer over [`std::net::TcpListener`],
//! thread-per-connection with `Connection: close` semantics, and polling
//! worker loops. What it fronts is the point: every query goes through
//! the same bounds-checked `try_*` twins of [`Solution`] that the CLI
//! uses — [`answer_query`] *is* the CLI's query path, so HTTP and CLI
//! semantics cannot drift.
//!
//! ## Request lifecycle
//!
//! ```text
//! accept → parse request → draining? ── yes → 503
//!                │ no
//!                ├── GET /dist|/path|/k-nearest|/submatrix|/reachable
//!                │       resolve Solution (?job=… or default)
//!                │       → answer_query → 200 JSON | 400 | 404 | 500
//!                ├── POST /solve → JobSpec::from_json → queue.submit
//!                │       → 202 {job} | 429 (queue full)
//!                ├── GET /jobs, GET|DELETE /jobs/<id>, /metrics, /health
//!                └── anything else → 404 / 405
//! ```
//!
//! Graceful shutdown ([`ServerHandle::shutdown`]) stops admitting work,
//! answers new requests `503`, drains in-flight ones, fires each running
//! job's [`CheckpointSignal`](crate::checkpoint::CheckpointSignal) so
//! the solve commits a round-granular
//! snapshot (PR 7), then trips the cancel tokens; interrupted jobs are
//! reported with their checkpoint directories, resumable via a later
//! `POST /solve` carrying `"resume_from"`.

use crate::jobs::{
    CancelOutcome, JobQueue, JobSpec, JobState, SolutionRegistry, STORE_SOLUTION_KEY,
};
use crate::plan::{Solution, Workload};
use crate::solver::ApspError;
use crate::store::DEFAULT_STORE_CACHE_BUDGET;
use apsp_graph::paths::NodeId;
use serde::Value;
use sparklet::{Metrics, MetricsSnapshot};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// The shared query-handler layer (used by both HTTP and the CLI)
// ---------------------------------------------------------------------------

/// A parsed point query, transport-agnostic: the HTTP router builds one
/// from URL parameters, `apspark query` builds one from CLI flags, and
/// both answer it through [`answer_query`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryRequest {
    /// `GET /dist?src&dst` — the workload's scalar (distance, width, or
    /// reachability bit).
    Dist {
        /// Source vertex.
        src: usize,
        /// Target vertex.
        dst: usize,
    },
    /// `GET /reachable?src&dst` — reachability, answered by every
    /// workload.
    Reachable {
        /// Source vertex.
        src: usize,
        /// Target vertex.
        dst: usize,
    },
    /// `GET /path?src&dst` — witness-route reconstruction.
    Path {
        /// Source vertex.
        src: usize,
        /// Target vertex.
        dst: usize,
    },
    /// `GET /k-nearest?src&k` — the `k` nearest vertices under the
    /// workload's own order.
    KNearest {
        /// Source vertex.
        src: usize,
        /// How many neighbours.
        k: usize,
    },
    /// `GET /submatrix?r0&r1&c0&c1` — the inclusive window
    /// `[r0..=r1] × [c0..=c1]` of raw closure cells.
    Submatrix {
        /// First row (inclusive).
        r0: usize,
        /// Last row (inclusive).
        r1: usize,
        /// First column (inclusive).
        c0: usize,
        /// Last column (inclusive).
        c1: usize,
    },
}

/// A typed answer to a [`QueryRequest`], renderable as JSON
/// ([`answer_json`]) or CLI text ([`render_text`]).
#[derive(Debug, Clone, PartialEq)]
pub enum QueryAnswer {
    /// A scalar distance (`metric == "dist"`) or width
    /// (`metric == "width"`); `None` means unreachable.
    Scalar {
        /// `"dist"` or `"width"`, after the workload.
        metric: &'static str,
        /// The value, when the target is reachable.
        value: Option<f64>,
    },
    /// A reachability bit.
    Reachable {
        /// Whether `dst` is reachable from `src`.
        reachable: bool,
    },
    /// A reconstructed route, or `None` (unreachable, or the solve did
    /// not track paths — `paths_tracked` distinguishes).
    Path {
        /// The route, as vertex ids including both endpoints.
        route: Option<Vec<NodeId>>,
        /// Whether the backing solution tracked witness paths at all.
        paths_tracked: bool,
    },
    /// The `k` nearest vertices with their scores.
    KNearest {
        /// `(vertex, score)` pairs in the workload's order.
        items: Vec<(NodeId, f64)>,
    },
    /// A dense window of raw closure cells (distances with `+∞` for
    /// unreachable, widths with `0.0`, or `1.0`/`0.0` closure bits).
    Submatrix {
        /// One `Vec` per requested row.
        cells: Vec<Vec<f64>>,
    },
}

/// A failed [`answer_query`], pre-classified for the transport: the HTTP
/// layer maps the variants to `400`/`404`/`500`, the CLI prints the
/// message and exits nonzero. Out-of-range vertex ids are *not-found*
/// (the resource named by the id does not exist); malformed windows are
/// *bad-request*; store I/O problems are *internal*.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// The request itself is malformed (bad window, unparsable ids).
    BadRequest(String),
    /// The request names a vertex or resource that does not exist.
    NotFound(String),
    /// The backing solution failed to answer (store I/O, engine error).
    Internal(String),
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::BadRequest(m) => write!(f, "bad request: {m}"),
            QueryError::NotFound(m) => write!(f, "not found: {m}"),
            QueryError::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl std::error::Error for QueryError {}

fn check_node(sol: &Solution, what: &str, id: usize) -> Result<(), QueryError> {
    if id >= sol.order() {
        return Err(QueryError::NotFound(format!(
            "{what} vertex {id} is out of range for n = {}",
            sol.order()
        )));
    }
    Ok(())
}

fn internal(e: ApspError) -> QueryError {
    match e {
        // Bounds are pre-checked above, so InvalidInput here means a
        // malformed request shape that slipped past the parser.
        ApspError::InvalidInput(m) => QueryError::BadRequest(m),
        other => QueryError::Internal(other.to_string()),
    }
}

/// Answers a point query against `sol` through its bounds-checked
/// `try_*` twins. This is the *single* query path shared by the HTTP
/// handlers and `apspark query`, so the two transports cannot drift:
/// same bounds checks, same typed-error degradation, same
/// workload-dependent `dist`/`width`/`reachable` dispatch.
pub fn answer_query(sol: &Solution, req: &QueryRequest) -> Result<QueryAnswer, QueryError> {
    match *req {
        QueryRequest::Dist { src, dst } => {
            check_node(sol, "source", src)?;
            check_node(sol, "target", dst)?;
            match sol.workload() {
                Workload::ShortestPaths => Ok(QueryAnswer::Scalar {
                    metric: "dist",
                    value: sol.try_dist(src, dst).map_err(internal)?,
                }),
                Workload::Widest => Ok(QueryAnswer::Scalar {
                    metric: "width",
                    value: sol.try_width(src, dst).map_err(internal)?,
                }),
                Workload::Reachability => Ok(QueryAnswer::Reachable {
                    reachable: sol.try_reachable(src, dst).map_err(internal)?,
                }),
            }
        }
        QueryRequest::Reachable { src, dst } => {
            check_node(sol, "source", src)?;
            check_node(sol, "target", dst)?;
            Ok(QueryAnswer::Reachable {
                reachable: sol.try_reachable(src, dst).map_err(internal)?,
            })
        }
        QueryRequest::Path { src, dst } => {
            check_node(sol, "source", src)?;
            check_node(sol, "target", dst)?;
            Ok(QueryAnswer::Path {
                route: sol.try_path(src, dst).map_err(internal)?,
                paths_tracked: sol.plan.paths,
            })
        }
        QueryRequest::KNearest { src, k } => {
            check_node(sol, "source", src)?;
            Ok(QueryAnswer::KNearest {
                items: sol.try_k_nearest(src, k).map_err(internal)?,
            })
        }
        QueryRequest::Submatrix { r0, r1, c0, c1 } => {
            if r1 < r0 || c1 < c0 {
                return Err(QueryError::BadRequest(
                    "submatrix wants r0 <= r1 and c0 <= c1 (inclusive)".into(),
                ));
            }
            check_node(sol, "row", r0)?;
            check_node(sol, "row", r1)?;
            check_node(sol, "column", c0)?;
            check_node(sol, "column", c1)?;
            let rows: Vec<usize> = (r0..=r1).collect();
            let cols: Vec<usize> = (c0..=c1).collect();
            Ok(QueryAnswer::Submatrix {
                cells: sol.try_submatrix(&rows, &cols).map_err(internal)?,
            })
        }
    }
}

/// Renders an answer as the CLI's human-readable text — the exact lines
/// `apspark query` has always printed, now produced from the same
/// [`QueryAnswer`] the HTTP layer serializes.
pub fn render_text(req: &QueryRequest, ans: &QueryAnswer) -> String {
    match (req, ans) {
        (QueryRequest::Dist { src, dst }, QueryAnswer::Scalar { metric, value }) => match value {
            Some(v) => format!("{metric}({src}, {dst}) = {v}"),
            None => format!("{metric}({src}, {dst}) = unreachable"),
        },
        (
            QueryRequest::Dist { src, dst } | QueryRequest::Reachable { src, dst },
            QueryAnswer::Reachable { reachable },
        ) => {
            format!("reachable({src}, {dst}) = {reachable}")
        }
        (
            QueryRequest::Path { src, dst },
            QueryAnswer::Path {
                route,
                paths_tracked,
            },
        ) => match route {
            Some(route) => {
                let hops: Vec<String> = route.iter().map(|x| x.to_string()).collect();
                format!(
                    "route {src} -> {dst}: {} hops: {}",
                    route.len().saturating_sub(1),
                    hops.join(" -> ")
                )
            }
            None => format!(
                "no route from {src} to {dst}{}",
                if *paths_tracked {
                    ""
                } else {
                    " (store was saved without path tracking)"
                }
            ),
        },
        (QueryRequest::KNearest { src, k }, QueryAnswer::KNearest { items }) => {
            let items: Vec<String> = items.iter().map(|(v, s)| format!("{v}:{s}")).collect();
            format!("k-nearest({src}, {k}): {}", items.join(" "))
        }
        (QueryRequest::Submatrix { r0, r1, c0, c1 }, QueryAnswer::Submatrix { cells }) => {
            let mut out = format!("submatrix [{r0}..={r1}] x [{c0}..={c1}]:");
            for row in cells {
                let cells: Vec<String> = row
                    .iter()
                    .map(|v| {
                        if v.is_finite() {
                            format!("{v}")
                        } else {
                            "inf".into()
                        }
                    })
                    .collect();
                out.push_str("\n  ");
                out.push_str(&cells.join(" "));
            }
            out
        }
        // A mismatched pairing cannot come out of answer_query; render
        // it debug-style rather than hiding it.
        (_, ans) => format!("{ans:?}"),
    }
}

/// Serializes an answer as the HTTP response body. Non-finite floats
/// (unreachable distances in a submatrix) render as JSON `null`.
pub fn answer_json(req: &QueryRequest, ans: &QueryAnswer) -> Value {
    let mut fields: Vec<(String, Value)> = Vec::new();
    match *req {
        QueryRequest::Dist { src, dst } => {
            fields.push(("query".into(), Value::Str("dist".into())));
            fields.push(("src".into(), Value::UInt(src as u64)));
            fields.push(("dst".into(), Value::UInt(dst as u64)));
        }
        QueryRequest::Reachable { src, dst } => {
            fields.push(("query".into(), Value::Str("reachable".into())));
            fields.push(("src".into(), Value::UInt(src as u64)));
            fields.push(("dst".into(), Value::UInt(dst as u64)));
        }
        QueryRequest::Path { src, dst } => {
            fields.push(("query".into(), Value::Str("path".into())));
            fields.push(("src".into(), Value::UInt(src as u64)));
            fields.push(("dst".into(), Value::UInt(dst as u64)));
        }
        QueryRequest::KNearest { src, k } => {
            fields.push(("query".into(), Value::Str("k-nearest".into())));
            fields.push(("src".into(), Value::UInt(src as u64)));
            fields.push(("k".into(), Value::UInt(k as u64)));
        }
        QueryRequest::Submatrix { r0, r1, c0, c1 } => {
            fields.push(("query".into(), Value::Str("submatrix".into())));
            fields.push(("r0".into(), Value::UInt(r0 as u64)));
            fields.push(("r1".into(), Value::UInt(r1 as u64)));
            fields.push(("c0".into(), Value::UInt(c0 as u64)));
            fields.push(("c1".into(), Value::UInt(c1 as u64)));
        }
    }
    match ans {
        QueryAnswer::Scalar { metric, value } => {
            fields.push(("metric".into(), Value::Str((*metric).into())));
            fields.push((
                "value".into(),
                match value {
                    Some(v) => Value::Float(*v),
                    None => Value::Null,
                },
            ));
        }
        QueryAnswer::Reachable { reachable } => {
            fields.push(("reachable".into(), Value::Bool(*reachable)));
        }
        QueryAnswer::Path {
            route,
            paths_tracked,
        } => {
            match route {
                Some(route) => {
                    fields.push((
                        "route".into(),
                        Value::Array(route.iter().map(|&v| Value::UInt(v as u64)).collect()),
                    ));
                    fields.push((
                        "hops".into(),
                        Value::UInt(route.len().saturating_sub(1) as u64),
                    ));
                }
                None => {
                    fields.push(("route".into(), Value::Null));
                    fields.push(("hops".into(), Value::Null));
                }
            }
            fields.push(("paths_tracked".into(), Value::Bool(*paths_tracked)));
        }
        QueryAnswer::KNearest { items } => {
            fields.push((
                "items".into(),
                Value::Array(
                    items
                        .iter()
                        .map(|&(v, s)| {
                            Value::Object(vec![
                                ("v".into(), Value::UInt(v as u64)),
                                ("score".into(), Value::Float(s)),
                            ])
                        })
                        .collect(),
                ),
            ));
        }
        QueryAnswer::Submatrix { cells } => {
            fields.push((
                "cells".into(),
                Value::Array(
                    cells
                        .iter()
                        .map(|row| {
                            Value::Array(
                                row.iter()
                                    .map(|&v| {
                                        if v.is_finite() {
                                            Value::Float(v)
                                        } else {
                                            Value::Null
                                        }
                                    })
                                    .collect(),
                            )
                        })
                        .collect(),
                ),
            ));
        }
    }
    Value::Object(fields)
}

// ---------------------------------------------------------------------------
// Minimal HTTP/1.1 request/response plumbing
// ---------------------------------------------------------------------------

const MAX_LINE: usize = 8 * 1024;
const MAX_HEADERS: usize = 64;
const MAX_BODY: usize = 1024 * 1024;

struct HttpRequest {
    method: String,
    path: String,
    params: Vec<(String, String)>,
    body: String,
}

fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' if i + 2 < bytes.len() => {
                let hex = &s[i + 1..i + 3];
                match u8::from_str_radix(hex, 16) {
                    Ok(b) => {
                        out.push(b);
                        i += 3;
                    }
                    Err(_) => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn parse_target(target: &str) -> (String, Vec<(String, String)>) {
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let params = query
        .split('&')
        .filter(|kv| !kv.is_empty())
        .map(|kv| match kv.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(kv), String::new()),
        })
        .collect();
    (path.to_string(), params)
}

/// Reads one request. `Ok(None)` means the client closed without sending
/// one; `Err` is a malformed request the caller answers with `400`.
fn read_request(stream: &mut TcpStream) -> Result<Option<HttpRequest>, String> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    let n = reader
        .by_ref()
        .take(MAX_LINE as u64)
        .read_line(&mut line)
        .map_err(|e| format!("cannot read request line: {e}"))?;
    if n == 0 {
        return Ok(None);
    }
    let line = line.trim_end_matches(['\r', '\n']);
    let mut parts = line.split_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v)) => (m.to_string(), t.to_string(), v),
        _ => return Err(format!("malformed request line '{line}'")),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(format!("unsupported protocol '{version}'"));
    }
    let mut content_length = 0usize;
    for _ in 0..MAX_HEADERS {
        let mut header = String::new();
        reader
            .by_ref()
            .take(MAX_LINE as u64)
            .read_line(&mut header)
            .map_err(|e| format!("cannot read header: {e}"))?;
        let header = header.trim_end_matches(['\r', '\n']);
        if header.is_empty() {
            let body = if content_length > 0 {
                if content_length > MAX_BODY {
                    return Err(format!(
                        "request body of {content_length} bytes exceeds the {MAX_BODY}-byte limit"
                    ));
                }
                let mut buf = vec![0u8; content_length];
                reader
                    .read_exact(&mut buf)
                    .map_err(|e| format!("cannot read request body: {e}"))?;
                String::from_utf8_lossy(&buf).into_owned()
            } else {
                String::new()
            };
            let (path, params) = parse_target(&target);
            return Ok(Some(HttpRequest {
                method,
                path,
                params,
                body,
            }));
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse::<usize>()
                    .map_err(|_| format!("malformed Content-Length '{}'", value.trim()))?;
            }
        }
    }
    Err(format!("more than {MAX_HEADERS} headers"))
}

fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

fn write_response(stream: &mut TcpStream, status: u16, body: &Value) {
    let body = serde_json::to_string(body).unwrap_or_else(|_| "{}".to_string());
    let head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        status_reason(status),
        body.len(),
    );
    // A client that hung up mid-response is its own problem; the server
    // must not die (or panic) over it.
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

fn error_body(kind: &str, detail: &str) -> Value {
    Value::Object(vec![(
        "error".to_string(),
        Value::Object(vec![
            ("kind".to_string(), Value::Str(kind.to_string())),
            ("detail".to_string(), Value::Str(detail.to_string())),
        ]),
    )])
}

impl QueryError {
    fn to_response(&self) -> (u16, Value) {
        match self {
            QueryError::BadRequest(m) => (400, error_body("bad-request", m)),
            QueryError::NotFound(m) => (404, error_body("not-found", m)),
            QueryError::Internal(m) => (500, error_body("internal", m)),
        }
    }
}

// ---------------------------------------------------------------------------
// Server configuration and lifecycle
// ---------------------------------------------------------------------------

/// Configuration for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// TCP port to bind on 127.0.0.1; `0` picks an ephemeral port
    /// (reported by [`ServerHandle::addr`]).
    pub port: u16,
    /// Solve-job worker threads.
    pub workers: usize,
    /// Bound on unfinished jobs (queued + running); submissions beyond
    /// it are refused with `429`.
    pub queue_depth: usize,
    /// A committed closure store to mount as the default query target.
    pub store: Option<PathBuf>,
    /// Decoded-block cache budget for the mounted store, in bytes.
    pub cache_budget_bytes: u64,
    /// Executor cores per solve job.
    pub cores: usize,
    /// Root for per-job checkpoint directories; a per-process directory
    /// under the system temp dir when absent.
    pub work_dir: Option<PathBuf>,
    /// How long [`ServerHandle::shutdown`] waits for running jobs to
    /// checkpoint and for in-flight requests to drain.
    pub drain_timeout: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            port: 0,
            workers: 2,
            queue_depth: 4,
            store: None,
            cache_budget_bytes: DEFAULT_STORE_CACHE_BUDGET,
            cores: std::thread::available_parallelism().map_or(4, |p| p.get().min(8)),
            work_dir: None,
            drain_timeout: Duration::from_secs(30),
        }
    }
}

struct Shared {
    metrics: Arc<Metrics>,
    registry: SolutionRegistry,
    queue: JobQueue,
    /// New requests are answered `503` once set.
    draining: AtomicBool,
    /// Workers exit their poll loop once set (after finishing the
    /// current job).
    stop_workers: AtomicBool,
    /// The accept loop exits once set.
    stop_accept: AtomicBool,
    /// Connections currently being served (accepted, not yet closed).
    open_connections: AtomicUsize,
    cores: usize,
}

/// The service subsystem's entry point; start one with [`Server::start`].
pub struct Server;

impl Server {
    /// Binds `127.0.0.1:<port>`, mounts the configured store (if any),
    /// and spawns the accept loop plus the worker pool. Returns a handle
    /// for querying state and shutting down.
    pub fn start(config: ServeConfig) -> Result<ServerHandle, ApspError> {
        let metrics = Arc::new(Metrics::default());
        let work_dir = config.work_dir.clone().unwrap_or_else(|| {
            std::env::temp_dir().join(format!("apspark-serve-{}", std::process::id()))
        });
        std::fs::create_dir_all(&work_dir).map_err(|e| {
            ApspError::Store(format!(
                "cannot create serve work dir '{}': {e}",
                work_dir.display()
            ))
        })?;
        let registry = SolutionRegistry::new();
        if let Some(dir) = &config.store {
            let sol = Solution::open_with_cache_budget(dir, config.cache_budget_bytes)?;
            registry.register(STORE_SOLUTION_KEY, Arc::new(sol));
        }
        let listener = TcpListener::bind(("127.0.0.1", config.port)).map_err(|e| {
            ApspError::InvalidConfig(format!("cannot bind 127.0.0.1:{}: {e}", config.port))
        })?;
        let addr = listener
            .local_addr()
            .map_err(|e| ApspError::InvalidConfig(format!("cannot resolve bound address: {e}")))?;
        listener.set_nonblocking(true).map_err(|e| {
            ApspError::InvalidConfig(format!("cannot set the listener nonblocking: {e}"))
        })?;

        let shared = Arc::new(Shared {
            queue: JobQueue::new(config.queue_depth, metrics.clone(), work_dir),
            metrics,
            registry,
            draining: AtomicBool::new(false),
            stop_workers: AtomicBool::new(false),
            stop_accept: AtomicBool::new(false),
            open_connections: AtomicUsize::new(0),
            cores: config.cores.max(1),
        });

        let accept = {
            let shared = shared.clone();
            std::thread::spawn(move || accept_loop(listener, shared))
        };
        let workers = (0..config.workers.max(1))
            .map(|_| {
                let shared = shared.clone();
                std::thread::spawn(move || worker_loop(shared))
            })
            .collect();

        Ok(ServerHandle {
            addr,
            shared,
            accept: Some(accept),
            workers,
            drain_timeout: config.drain_timeout,
        })
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    loop {
        if shared.stop_accept.load(Ordering::Acquire) {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                shared.open_connections.fetch_add(1, Ordering::AcqRel);
                let shared = shared.clone();
                std::thread::spawn(move || {
                    handle_connection(stream, &shared);
                    shared.open_connections.fetch_sub(1, Ordering::AcqRel);
                });
            }
            // Nonblocking accept: poll (the parking_lot shim has no
            // Condvar to park on).
            Err(_) => std::thread::sleep(Duration::from_millis(1)),
        }
    }
}

fn worker_loop(shared: Arc<Shared>) {
    loop {
        if shared.stop_workers.load(Ordering::Acquire) {
            return;
        }
        let Some((id, spec, cancel, signal, ckpt_dir)) = shared.queue.claim_next() else {
            std::thread::sleep(Duration::from_millis(2));
            continue;
        };
        match crate::jobs::run_job(
            &spec,
            cancel,
            signal,
            &ckpt_dir,
            shared.metrics.clone(),
            shared.cores,
        ) {
            Ok(sol) => {
                let n = sol.order();
                let elapsed = sol.elapsed.as_secs_f64();
                shared.registry.register(&id, Arc::new(sol));
                shared.queue.complete(&id, n, elapsed);
            }
            Err(e) => shared.queue.finish_err(&id, &e),
        }
    }
}

fn handle_connection(mut stream: TcpStream, shared: &Shared) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
    let (status, body) = match read_request(&mut stream) {
        Err(detail) => (400, error_body("bad-request", &detail)),
        Ok(None) => return,
        Ok(Some(req)) => {
            if shared.draining.load(Ordering::Acquire) {
                (503, error_body("draining", "the server is shutting down"))
            } else {
                route(shared, &req)
            }
        }
    };
    shared.metrics.note_request_served();
    write_response(&mut stream, status, &body);
}

fn param<'a>(req: &'a HttpRequest, key: &str) -> Option<&'a str> {
    req.params
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v.as_str())
}

fn param_usize(req: &HttpRequest, key: &str) -> Result<usize, QueryError> {
    let raw = param(req, key)
        .ok_or_else(|| QueryError::BadRequest(format!("missing required parameter '{key}'")))?;
    raw.parse::<usize>().map_err(|_| {
        QueryError::BadRequest(format!(
            "parameter '{key}' must be a non-negative integer, got '{raw}'"
        ))
    })
}

fn parse_query_request(req: &HttpRequest) -> Result<QueryRequest, QueryError> {
    match req.path.as_str() {
        "/dist" => Ok(QueryRequest::Dist {
            src: param_usize(req, "src")?,
            dst: param_usize(req, "dst")?,
        }),
        "/reachable" => Ok(QueryRequest::Reachable {
            src: param_usize(req, "src")?,
            dst: param_usize(req, "dst")?,
        }),
        "/path" => Ok(QueryRequest::Path {
            src: param_usize(req, "src")?,
            dst: param_usize(req, "dst")?,
        }),
        "/k-nearest" => Ok(QueryRequest::KNearest {
            src: param_usize(req, "src")?,
            k: param_usize(req, "k")?,
        }),
        "/submatrix" => Ok(QueryRequest::Submatrix {
            r0: param_usize(req, "r0")?,
            r1: param_usize(req, "r1")?,
            c0: param_usize(req, "c0")?,
            c1: param_usize(req, "c1")?,
        }),
        other => Err(QueryError::NotFound(format!("no such endpoint '{other}'"))),
    }
}

fn resolve_solution(shared: &Shared, req: &HttpRequest) -> Result<Arc<Solution>, QueryError> {
    match param(req, "job") {
        Some(id) => shared
            .registry
            .get(id)
            .ok_or_else(|| match shared.queue.status(id) {
                Some(st) => QueryError::NotFound(format!(
                    "job '{id}' is {}; no solution to query",
                    st.state.label()
                )),
                None => QueryError::NotFound(format!("no solution under job id '{id}'")),
            }),
        None => shared.registry.default_solution().ok_or_else(|| {
            QueryError::NotFound(
                "no solution available: POST /solve a job first, or start the server \
                 with --store DIR"
                    .to_string(),
            )
        }),
    }
}

fn route(shared: &Shared, req: &HttpRequest) -> (u16, Value) {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/health") => (
            200,
            Value::Object(vec![
                ("status".to_string(), Value::Str("ok".to_string())),
                ("draining".to_string(), Value::Bool(false)),
            ]),
        ),
        ("GET", "/metrics") => (200, metrics_json(shared)),
        ("GET", "/dist" | "/reachable" | "/path" | "/k-nearest" | "/submatrix") => {
            let sol = match resolve_solution(shared, req) {
                Ok(sol) => sol,
                Err(e) => return e.to_response(),
            };
            let query = match parse_query_request(req) {
                Ok(q) => q,
                Err(e) => return e.to_response(),
            };
            match answer_query(&sol, &query) {
                Ok(ans) => (200, answer_json(&query, &ans)),
                Err(e) => e.to_response(),
            }
        }
        ("POST", "/solve") => handle_solve(shared, req),
        ("GET", "/jobs") => {
            let jobs: Vec<Value> = shared.queue.list().iter().map(|st| st.to_json()).collect();
            (
                200,
                Value::Object(vec![("jobs".to_string(), Value::Array(jobs))]),
            )
        }
        ("GET", path) if path.starts_with("/jobs/") => {
            let id = &path["/jobs/".len()..];
            match shared.queue.status(id) {
                Some(st) => (200, st.to_json()),
                None => (404, error_body("not-found", &format!("no job '{id}'"))),
            }
        }
        ("DELETE", path) if path.starts_with("/jobs/") => {
            let id = &path["/jobs/".len()..];
            match shared.queue.cancel(id) {
                CancelOutcome::CancelledQueued => (200, job_state_body(id, JobState::Cancelled)),
                CancelOutcome::CancellingRunning => (
                    202,
                    Value::Object(vec![
                        ("job".to_string(), Value::Str(id.to_string())),
                        ("state".to_string(), Value::Str("cancelling".to_string())),
                    ]),
                ),
                CancelOutcome::AlreadyFinished(state) => (
                    409,
                    error_body(
                        "conflict",
                        &format!("job '{id}' already finished ({})", state.label()),
                    ),
                ),
                CancelOutcome::NotFound => {
                    (404, error_body("not-found", &format!("no job '{id}'")))
                }
            }
        }
        (
            _,
            "/health" | "/metrics" | "/dist" | "/reachable" | "/path" | "/k-nearest" | "/submatrix"
            | "/solve" | "/jobs",
        ) => (
            405,
            error_body(
                "method-not-allowed",
                &format!("{} is not supported on {}", req.method, req.path),
            ),
        ),
        (_, path) if path.starts_with("/jobs/") => (
            405,
            error_body(
                "method-not-allowed",
                &format!("{} is not supported on {}", req.method, req.path),
            ),
        ),
        (_, path) => (
            404,
            error_body("not-found", &format!("no such endpoint '{path}'")),
        ),
    }
}

fn job_state_body(id: &str, state: JobState) -> Value {
    Value::Object(vec![
        ("job".to_string(), Value::Str(id.to_string())),
        ("state".to_string(), Value::Str(state.label().to_string())),
    ])
}

fn handle_solve(shared: &Shared, req: &HttpRequest) -> (u16, Value) {
    let body = match serde_json::from_str(&req.body) {
        Ok(v) => v,
        Err(e) => {
            return (
                400,
                error_body("bad-request", &format!("malformed JSON body: {e}")),
            )
        }
    };
    let spec = match JobSpec::from_json(&body) {
        Ok(s) => s,
        Err(detail) => return (400, error_body("bad-request", &detail)),
    };
    match shared.queue.submit(spec) {
        Ok(id) => (
            202,
            Value::Object(vec![
                ("job".to_string(), Value::Str(id.clone())),
                ("status_url".to_string(), Value::Str(format!("/jobs/{id}"))),
            ]),
        ),
        Err(full) => (
            429,
            error_body(
                "queue-full",
                &format!(
                    "the job queue holds {} of {} unfinished jobs; retry later",
                    full.depth, full.capacity
                ),
            ),
        ),
    }
}

fn metrics_json(shared: &Shared) -> Value {
    let m = shared.metrics.snapshot();
    let u = |v: u64| Value::UInt(v);
    Value::Object(vec![
        ("requests_served".to_string(), u(m.requests_served)),
        ("jobs_queued".to_string(), u(m.jobs_queued)),
        ("jobs_rejected".to_string(), u(m.jobs_rejected)),
        ("jobs_cancelled".to_string(), u(m.jobs_cancelled)),
        ("queue_depth_peak".to_string(), u(m.queue_depth_peak)),
        (
            "queue".to_string(),
            Value::Object(vec![
                ("depth".to_string(), u(shared.queue.depth() as u64)),
                ("capacity".to_string(), u(shared.queue.capacity() as u64)),
            ]),
        ),
        ("jobs".to_string(), u(m.jobs)),
        ("stages".to_string(), u(m.stages)),
        ("tasks".to_string(), u(m.tasks)),
        ("task_retries".to_string(), u(m.task_retries)),
        ("shuffles".to_string(), u(m.shuffles)),
        ("shuffle_records".to_string(), u(m.shuffle_records)),
        ("shuffle_bytes".to_string(), u(m.shuffle_bytes)),
        ("broadcast_bytes".to_string(), u(m.broadcast_bytes)),
        ("side_channel_writes".to_string(), u(m.side_channel_writes)),
        ("side_channel_reads".to_string(), u(m.side_channel_reads)),
        (
            "side_channel_bytes_written".to_string(),
            u(m.side_channel_bytes_written),
        ),
        (
            "side_channel_bytes_read".to_string(),
            u(m.side_channel_bytes_read),
        ),
        ("cache_hits".to_string(), u(m.cache_hits)),
        ("collected_records".to_string(), u(m.collected_records)),
        ("checkpoints_written".to_string(), u(m.checkpoints_written)),
        ("checkpoint_bytes".to_string(), u(m.checkpoint_bytes)),
        ("rounds_resumed".to_string(), u(m.rounds_resumed)),
        ("store_cache_hits".to_string(), u(m.store_cache_hits)),
        ("store_cache_misses".to_string(), u(m.store_cache_misses)),
        (
            "store_cache_evictions".to_string(),
            u(m.store_cache_evictions),
        ),
        ("store_blocks_read".to_string(), u(m.store_blocks_read)),
        ("store_bytes_read".to_string(), u(m.store_bytes_read)),
    ])
}

// ---------------------------------------------------------------------------
// The running server's handle
// ---------------------------------------------------------------------------

/// A running job interrupted by shutdown, with the committed checkpoint
/// it can resume from (`POST /solve` with `"resume_from"`).
#[derive(Debug, Clone)]
pub struct InterruptedJob {
    /// The job's id.
    pub id: String,
    /// Directory holding the committed round.
    pub checkpoint_dir: PathBuf,
}

/// What a graceful [`ServerHandle::shutdown`] accomplished.
#[derive(Debug, Clone, Default)]
pub struct ShutdownReport {
    /// Requests answered over the server's lifetime (any status).
    pub requests_served: u64,
    /// Running jobs that committed a round-granular checkpoint before
    /// being cancelled; each is resumable.
    pub interrupted: Vec<InterruptedJob>,
    /// Final engine counters.
    pub metrics: MetricsSnapshot,
}

/// Handle to a running [`Server`]: address, live metrics, job queue, and
/// graceful shutdown.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    drain_timeout: Duration,
}

impl ServerHandle {
    /// The bound address (with the real port when `0` was configured).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The bound port.
    pub fn port(&self) -> u16 {
        self.addr.port()
    }

    /// Point-in-time engine counters (aggregated across all jobs and
    /// the request handlers).
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared.metrics.snapshot()
    }

    /// The solve-job queue (submit/status/cancel are also reachable
    /// in-process, e.g. from the CLI front end).
    pub fn jobs(&self) -> &JobQueue {
        &self.shared.queue
    }

    /// The solution registered under `key` (a job id or
    /// [`STORE_SOLUTION_KEY`]).
    pub fn solution(&self, key: &str) -> Option<Arc<Solution>> {
        self.shared.registry.get(key)
    }

    /// The default point-query target (mounted store, else the latest
    /// finished job).
    pub fn default_solution(&self) -> Option<Arc<Solution>> {
        self.shared.registry.default_solution()
    }

    /// Graceful shutdown:
    ///
    /// 1. stop admitting work — workers finish their current job and
    ///    exit, new requests are answered `503`;
    /// 2. fire every running job's [`CheckpointSignal`] so the engine
    ///    commits a snapshot at the next round barrier (PR 7);
    /// 3. wait (bounded by the configured drain timeout) for those
    ///    checkpoints to land, then trip the cancel tokens — the engine
    ///    refuses further task launches and the solves unwind;
    /// 4. drain in-flight connections, stop the accept loop, join all
    ///    threads.
    ///
    /// Interrupted jobs with a committed checkpoint are reported as
    /// resumable.
    ///
    /// [`CheckpointSignal`]: crate::checkpoint::CheckpointSignal
    pub fn shutdown(mut self) -> ShutdownReport {
        let shared = &self.shared;
        shared.draining.store(true, Ordering::Release);
        shared.stop_workers.store(true, Ordering::Release);

        // Ask every running job for a round-granular snapshot, then wait
        // for the signals to be consumed at a round barrier and for the
        // commits to land in the aggregate counter.
        let running = shared.queue.running();
        let before = shared.metrics.snapshot().checkpoints_written;
        for job in &running {
            job.signal.request();
        }
        let deadline = Instant::now() + self.drain_timeout;
        loop {
            let unsettled: Vec<_> = running
                .iter()
                .filter(|j| !shared.queue.is_settled(&j.id))
                .collect();
            let taken = unsettled
                .iter()
                .filter(|j| !j.signal.is_requested())
                .count() as u64;
            let committed = shared.metrics.snapshot().checkpoints_written - before;
            if unsettled.is_empty() || (taken == unsettled.len() as u64 && committed >= taken) {
                break;
            }
            if Instant::now() >= deadline {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }

        // Checkpoints are on disk (or the job finished on its own);
        // now unwind whatever is still running.
        for job in &running {
            job.cancel.cancel();
        }
        while running.iter().any(|j| !shared.queue.is_settled(&j.id)) && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }

        // Drain in-flight connections, then stop accepting.
        while shared.open_connections.load(Ordering::Acquire) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        shared.stop_accept.store(true, Ordering::Release);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }

        // Which interrupted jobs left a committed round behind?
        let mut interrupted = Vec::new();
        for job in &running {
            let has_checkpoint = std::fs::read_dir(&job.checkpoint_dir)
                .map(|mut entries| entries.next().is_some())
                .unwrap_or(false);
            if has_checkpoint
                && shared
                    .queue
                    .status(&job.id)
                    .is_some_and(|st| st.state == JobState::Cancelled)
            {
                shared.queue.mark_resumable(&job.id);
                interrupted.push(InterruptedJob {
                    id: job.id.clone(),
                    checkpoint_dir: job.checkpoint_dir.clone(),
                });
            }
        }

        let metrics = shared.metrics.snapshot();
        ShutdownReport {
            requests_served: metrics.requests_served,
            interrupted,
            metrics,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::Problem;
    use sparklet::{SparkConfig, SparkContext};

    fn solved(n: usize) -> Solution {
        let g = apsp_graph::generators::erdos_renyi_paper(n, 0.5, 3);
        let ctx = SparkContext::new(SparkConfig::with_cores(2));
        Problem::new(&g).with_paths().solve(&ctx).unwrap()
    }

    #[test]
    fn answer_query_matches_the_solution_twins_and_bounds_check() {
        let sol = solved(16);
        match answer_query(&sol, &QueryRequest::Dist { src: 0, dst: 5 }).unwrap() {
            QueryAnswer::Scalar { metric, value } => {
                assert_eq!(metric, "dist");
                assert_eq!(value, sol.try_dist(0, 5).unwrap());
            }
            other => panic!("wrong answer shape: {other:?}"),
        }
        // Out-of-range ids are NotFound (the resource does not exist),
        // malformed windows are BadRequest.
        assert!(matches!(
            answer_query(&sol, &QueryRequest::Dist { src: 0, dst: 99 }),
            Err(QueryError::NotFound(_))
        ));
        assert!(matches!(
            answer_query(
                &sol,
                &QueryRequest::Submatrix {
                    r0: 3,
                    r1: 1,
                    c0: 0,
                    c1: 1
                }
            ),
            Err(QueryError::BadRequest(_))
        ));
    }

    #[test]
    fn render_text_reproduces_the_cli_lines() {
        let req = QueryRequest::Dist { src: 0, dst: 5 };
        let ans = QueryAnswer::Scalar {
            metric: "dist",
            value: Some(2.5),
        };
        assert_eq!(render_text(&req, &ans), "dist(0, 5) = 2.5");
        let ans = QueryAnswer::Scalar {
            metric: "dist",
            value: None,
        };
        assert_eq!(render_text(&req, &ans), "dist(0, 5) = unreachable");

        let req = QueryRequest::Path { src: 1, dst: 4 };
        let ans = QueryAnswer::Path {
            route: Some(vec![1, 2, 4]),
            paths_tracked: true,
        };
        assert_eq!(render_text(&req, &ans), "route 1 -> 4: 2 hops: 1 -> 2 -> 4");
        let ans = QueryAnswer::Path {
            route: None,
            paths_tracked: false,
        };
        assert_eq!(
            render_text(&req, &ans),
            "no route from 1 to 4 (store was saved without path tracking)"
        );

        let req = QueryRequest::KNearest { src: 2, k: 2 };
        let ans = QueryAnswer::KNearest {
            items: vec![(7, 1.5), (3, 2.0)],
        };
        assert_eq!(render_text(&req, &ans), "k-nearest(2, 2): 7:1.5 3:2");

        let req = QueryRequest::Submatrix {
            r0: 0,
            r1: 1,
            c0: 0,
            c1: 1,
        };
        let ans = QueryAnswer::Submatrix {
            cells: vec![vec![0.0, f64::INFINITY], vec![1.0, 0.0]],
        };
        assert_eq!(
            render_text(&req, &ans),
            "submatrix [0..=1] x [0..=1]:\n  0 inf\n  1 0"
        );
    }

    #[test]
    fn answer_json_uses_null_for_unreachable() {
        let req = QueryRequest::Dist { src: 0, dst: 1 };
        let ans = QueryAnswer::Scalar {
            metric: "dist",
            value: None,
        };
        assert!(answer_json(&req, &ans).get("value").unwrap().is_null());

        let req = QueryRequest::Submatrix {
            r0: 0,
            r1: 0,
            c0: 0,
            c1: 1,
        };
        let ans = QueryAnswer::Submatrix {
            cells: vec![vec![2.0, f64::INFINITY]],
        };
        let cells = answer_json(&req, &ans);
        let row = cells.get("cells").and_then(Value::as_array).unwrap()[0]
            .as_array()
            .unwrap()
            .to_vec();
        assert_eq!(row[0].as_f64(), Some(2.0));
        assert!(row[1].is_null());
    }

    #[test]
    fn request_targets_parse_with_query_strings_and_escapes() {
        let (path, params) = parse_target("/dist?src=3&dst=7");
        assert_eq!(path, "/dist");
        assert_eq!(
            params,
            vec![("src".into(), "3".into()), ("dst".into(), "7".into())]
        );
        let (path, params) = parse_target("/jobs");
        assert_eq!(path, "/jobs");
        assert!(params.is_empty());
        assert_eq!(percent_decode("a%20b+c"), "a b c");
        assert_eq!(percent_decode("100%"), "100%");
        assert_eq!(percent_decode("%2Ftmp%2Fx"), "/tmp/x");
    }
}
