//! Algorithm 1: repeated squaring with column-block sweeps.

use crate::blocks::{BlockRecord, BlockedMatrix};
use crate::building_blocks::in_column;
use crate::solver::{validate_adjacency, ApspError, ApspResult, ApspSolver, SolverConfig};
use apsp_blockmat::Matrix;
use sparklet::{Rdd, SparkContext};
use std::time::Instant;

/// The paper's Algorithm 1: compute `A^n` over the (min, +) semiring by
/// repeated squaring, with each squaring rewritten as `q` matrix ×
/// column-block products to avoid the all-to-all `cartesian` shuffle
/// (which "was easily stalling even on small problems", §4.2).
///
/// Per sweep `J` (lines 2–5): the column's blocks are `collect`ed at the
/// driver and staged in shared storage, every stored block of `A`
/// multiplies the matching column block (`MatProd`), and `reduceByKey`
/// with `MatMin` folds the partial products. Sweeps are `union`ed into
/// the next `A` (line 6).
///
/// Impure (side-channel staging) and asymptotically wasteful — `⌈log₂ n⌉`
/// squarings of `O(n³)` work each — but the fastest solver to write, which
/// is the paper's point about programmer productivity.
#[derive(Debug, Default, Clone)]
pub struct RepeatedSquaring;

fn col_key(step: usize, j: usize, k: usize) -> String {
    format!("rs:{step}:{j}:{k}")
}

impl ApspSolver for RepeatedSquaring {
    fn name(&self) -> &'static str {
        "Repeated Squaring"
    }

    fn is_pure(&self) -> bool {
        false
    }

    fn solve(
        &self,
        ctx: &SparkContext,
        adjacency: &Matrix,
        cfg: &SolverConfig,
    ) -> Result<ApspResult, ApspError> {
        if cfg.track_paths {
            return crate::tracked::solve_rs(ctx, adjacency, cfg);
        }
        let n = adjacency.order();
        cfg.check(n)?;
        if cfg.validate_input {
            validate_adjacency(adjacency)?;
        }
        let start = Instant::now();
        let metrics_before = ctx.metrics();

        let b = cfg.block_size;
        let q = n.div_ceil(b);
        let partitioner = cfg.partitioner.build(q, cfg.partitions_for(ctx));
        let blocked = BlockedMatrix::from_matrix(ctx, adjacency, b, partitioner.clone());
        let mut a: Rdd<BlockRecord> = blocked.rdd.clone().persist();

        // ⌈log₂ n⌉ squarings close paths of any hop count (diagonal zeros
        // make A^(2^s) monotone non-increasing and ≥-dominated by A^n).
        let squarings = (n.max(2) as f64).log2().ceil() as usize;
        let mut sweeps_done = 0u64;

        for step in 0..squarings {
            let mut sweeps: Vec<Rdd<BlockRecord>> = Vec::with_capacity(q);
            for j in 0..q {
                // Stage column J's blocks in canonical orientation
                // C_K = A_KJ (rows K, cols J) — lines 3–4.
                for ((x, y), blk) in a.filter(move |(key, _)| in_column(key, j)).collect()? {
                    if y == j {
                        ctx.side_channel()
                            .put_block(col_key(step, j, x), blk.clone());
                    }
                    if x == j && x != y {
                        ctx.side_channel()
                            .put_block(col_key(step, j, y), blk.transpose());
                    }
                }

                // MatProd against the staged column + reduceByKey(MatMin)
                // — line 5. A stored record (I, K) contributes A_IK ⊗ C_K
                // toward D_IJ and (via its transpose) A_KI ⊗ C_I toward
                // D_KJ; only upper-triangular targets are emitted, since
                // sweep J owns exactly the keys (X, J), X ≤ J.
                let side = ctx.clone();
                let kern = cfg.kernel;
                let contributions = a.try_flat_map(move |((rec_i, rec_k), blk)| {
                    let mut out: Vec<BlockRecord> = Vec::with_capacity(2);
                    if rec_i <= j {
                        let c_k = side
                            .side_channel()
                            .get_block_arc(&col_key(step, j, rec_k))?;
                        out.push(((rec_i, j), blk.min_plus_with(kern, &c_k)));
                    }
                    if rec_k <= j && rec_i != rec_k {
                        let c_i = side
                            .side_channel()
                            .get_block_arc(&col_key(step, j, rec_i))?;
                        out.push(((rec_k, j), blk.transpose().min_plus_with(kern, &c_i)));
                    }
                    Ok(out)
                });
                let t_j = contributions.reduce_by_key(partitioner.clone(), |mut x, y| {
                    x.mat_min_assign(&y);
                    x
                });
                sweeps.push(t_j);
                sweeps_done += 1;
            }

            // Line 6: union the sweeps into the next A.
            let next = sweeps[0].union_all(&sweeps[1..]).persist();
            // Materialize *before* dropping the staged columns — the
            // products read them lazily (impurity in action).
            next.count()?;
            for j in 0..q {
                for k in 0..q {
                    ctx.side_channel().remove(&col_key(step, j, k));
                }
            }
            a.unpersist();
            a = next;
        }

        let result = blocked.with_rdd(a).collect_to_matrix()?;
        let metrics = ctx.metrics().delta(&metrics_before);
        Ok(ApspResult::new(
            result,
            metrics,
            start.elapsed(),
            sweeps_done,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apsp_blockmat::INF;
    use apsp_graph::{floyd_warshall as fw_oracle, generators};
    use sparklet::SparkConfig;

    fn ctx() -> SparkContext {
        SparkContext::new(SparkConfig::with_cores(4))
    }

    #[test]
    fn matches_oracle_on_random_graph() {
        let g = generators::erdos_renyi_paper(48, 0.1, 44);
        let res = RepeatedSquaring
            .solve(&ctx(), &g.to_dense(), &SolverConfig::new(12))
            .unwrap();
        assert!(res.distances().approx_eq(&fw_oracle(&g), 1e-9).is_ok());
        // 4 column sweeps × ⌈log2 48⌉ = 6 squarings.
        assert_eq!(res.iterations, 24);
    }

    #[test]
    fn long_path_needs_all_squarings() {
        // A path of length 33 needs ⌈log2 34⌉ = 6 squarings to close; an
        // off-by-one in the squaring count fails exactly here.
        let g = generators::path(34);
        let res = RepeatedSquaring
            .solve(&ctx(), &g.to_dense(), &SolverConfig::new(8))
            .unwrap();
        assert_eq!(res.distances().get(0, 33), 33.0);
        assert!(res.distances().approx_eq(&fw_oracle(&g), 1e-9).is_ok());
    }

    #[test]
    fn single_block() {
        let g = generators::cycle(7);
        let res = RepeatedSquaring
            .solve(&ctx(), &g.to_dense(), &SolverConfig::new(8))
            .unwrap();
        assert!(res.distances().approx_eq(&fw_oracle(&g), 1e-9).is_ok());
    }

    #[test]
    fn uneven_blocks() {
        let g = generators::erdos_renyi_paper(29, 0.1, 5);
        let res = RepeatedSquaring
            .solve(&ctx(), &g.to_dense(), &SolverConfig::new(9))
            .unwrap();
        assert!(res.distances().approx_eq(&fw_oracle(&g), 1e-9).is_ok());
    }

    #[test]
    fn stages_columns_in_side_channel_and_cleans_up() {
        let sc = ctx();
        let g = generators::erdos_renyi_paper(32, 0.1, 11);
        let res = RepeatedSquaring
            .solve(&sc, &g.to_dense(), &SolverConfig::new(8))
            .unwrap();
        assert!(res.metrics.side_channel_writes > 0);
        assert!(sc.side_channel().is_empty());
    }

    #[test]
    fn disconnected_graph() {
        let mut g = apsp_graph::Graph::new(6);
        g.add_edge(0, 1, 1.0);
        let res = RepeatedSquaring
            .solve(&ctx(), &g.to_dense(), &SolverConfig::new(2))
            .unwrap();
        assert_eq!(res.distances().get(0, 1), 1.0);
        assert_eq!(res.distances().get(0, 5), INF);
    }
}
