//! Algorithm 1: repeated squaring with column-block sweeps.

use crate::engine::{self, AlgRun};
use crate::solver::{validate_adjacency, ApspError, ApspResult, ApspSolver, SolverConfig};
use apsp_blockmat::{Matrix, TrackedTropical, Tropical};
use sparklet::SparkContext;
use std::time::Instant;

/// The paper's Algorithm 1: compute `A^n` over the (min, +) semiring by
/// repeated squaring, with each squaring rewritten as `q` matrix ×
/// column-block products to avoid the all-to-all `cartesian` shuffle
/// (which "was easily stalling even on small problems", §4.2).
///
/// Per sweep `J` (lines 2–5): the column's blocks are `collect`ed at the
/// driver and staged in shared storage, every stored block of `A`
/// multiplies the matching column block (`MatProd`), and `reduceByKey`
/// with `MatMin` folds the partial products. Sweeps are `union`ed into
/// the next `A` (line 6).
///
/// Impure (side-channel staging) and asymptotically wasteful — `⌈log₂ n⌉`
/// squarings of `O(n³)` work each — but the fastest solver to write, which
/// is the paper's point about programmer productivity.
///
/// The algorithm itself lives in the crate-private `engine` module generically; this
/// front-end instantiates it with [`Tropical`] (plain APSP) or
/// [`TrackedTropical`] (`with_paths`).
#[derive(Debug, Default, Clone)]
pub struct RepeatedSquaring;

impl ApspSolver for RepeatedSquaring {
    fn name(&self) -> &'static str {
        "Repeated Squaring"
    }

    fn is_pure(&self) -> bool {
        false
    }

    fn solve(
        &self,
        ctx: &SparkContext,
        adjacency: &Matrix,
        cfg: &SolverConfig,
    ) -> Result<ApspResult, ApspError> {
        if cfg.track_paths {
            return engine::solve_tracked(ctx, adjacency, cfg, engine::solve_rs::<TrackedTropical>);
        }
        let n = adjacency.order();
        cfg.check(n)?;
        if cfg.validate_input {
            validate_adjacency(adjacency)?;
        }
        let start = Instant::now();
        let metrics_before = ctx.metrics();

        let run: AlgRun<Tropical> = engine::solve_rs(ctx, n, &|i, j| adjacency.get(i, j), cfg)?;
        let (vals, _) = run.collect_dense()?;

        let metrics = ctx.metrics().delta(&metrics_before);
        Ok(ApspResult::new(
            Matrix::from_vec(n, vals),
            metrics,
            start.elapsed(),
            run.iterations,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apsp_blockmat::INF;
    use apsp_graph::{floyd_warshall as fw_oracle, generators};
    use sparklet::SparkConfig;

    fn ctx() -> SparkContext {
        SparkContext::new(SparkConfig::with_cores(4))
    }

    #[test]
    fn matches_oracle_on_random_graph() {
        let g = generators::erdos_renyi_paper(48, 0.1, 44);
        let res = RepeatedSquaring
            .solve(&ctx(), &g.to_dense(), &SolverConfig::new(12))
            .unwrap();
        assert!(res.distances().approx_eq(&fw_oracle(&g), 1e-9).is_ok());
        // 4 column sweeps × ⌈log2 48⌉ = 6 squarings.
        assert_eq!(res.iterations, 24);
    }

    #[test]
    fn long_path_needs_all_squarings() {
        // A path of length 33 needs ⌈log2 34⌉ = 6 squarings to close; an
        // off-by-one in the squaring count fails exactly here.
        let g = generators::path(34);
        let res = RepeatedSquaring
            .solve(&ctx(), &g.to_dense(), &SolverConfig::new(8))
            .unwrap();
        assert_eq!(res.distances().get(0, 33), 33.0);
        assert!(res.distances().approx_eq(&fw_oracle(&g), 1e-9).is_ok());
    }

    #[test]
    fn single_block() {
        let g = generators::cycle(7);
        let res = RepeatedSquaring
            .solve(&ctx(), &g.to_dense(), &SolverConfig::new(8))
            .unwrap();
        assert!(res.distances().approx_eq(&fw_oracle(&g), 1e-9).is_ok());
    }

    #[test]
    fn uneven_blocks() {
        let g = generators::erdos_renyi_paper(29, 0.1, 5);
        let res = RepeatedSquaring
            .solve(&ctx(), &g.to_dense(), &SolverConfig::new(9))
            .unwrap();
        assert!(res.distances().approx_eq(&fw_oracle(&g), 1e-9).is_ok());
    }

    #[test]
    fn stages_columns_in_side_channel_and_cleans_up() {
        let sc = ctx();
        let g = generators::erdos_renyi_paper(32, 0.1, 11);
        let res = RepeatedSquaring
            .solve(&sc, &g.to_dense(), &SolverConfig::new(8))
            .unwrap();
        assert!(res.metrics.side_channel_writes > 0);
        assert!(sc.side_channel().is_empty());
    }

    #[test]
    fn disconnected_graph() {
        let mut g = apsp_graph::Graph::new(6);
        g.add_edge(0, 1, 1.0);
        let res = RepeatedSquaring
            .solve(&ctx(), &g.to_dense(), &SolverConfig::new(2))
            .unwrap();
        assert_eq!(res.distances().get(0, 1), 1.0);
        assert_eq!(res.distances().get(0, 5), INF);
    }
}
