//! The `cartesian` formulation of repeated squaring — the paper's
//! *abandoned* first attempt, kept as an executable ablation.
//!
//! §4.2: "repeated squaring becomes a sequence of three steps over the
//! RDD: `cartesian` followed by `filter` to group blocks that should be
//! multiplied, `map` applying min-plus product, and finally `reduceByKey`
//! … the problem with this approach is reliance on `cartesian` that
//! involves extensive all-to-all data shuffle. In our tests, we found
//! that `cartesian` was easily stalling even on small problems."
//!
//! This implementation is *pure* (no side channel — it is actually the
//! only fully-pure repeated-squaring variant) but materializes `|A|²`
//! candidate pairs per squaring and `P²` partitions per `cartesian`. The
//! [`tests`] quantify the blow-up against the column-sweep formulation.

use crate::blocks::{BlockRecord, BlockedMatrix};
use crate::solver::{validate_adjacency, ApspError, ApspResult, ApspSolver, SolverConfig};
use apsp_blockmat::Matrix;
use sparklet::{Rdd, SparkContext};
use std::time::Instant;

/// Pure repeated squaring via `cartesian` + `filter` + `map` +
/// `reduceByKey` (paper §4.2, the rejected design). Only sensible at demo
/// scale.
#[derive(Debug, Default, Clone)]
pub struct CartesianSquaring;

impl ApspSolver for CartesianSquaring {
    fn name(&self) -> &'static str {
        "Repeated Squaring (cartesian)"
    }

    fn is_pure(&self) -> bool {
        true
    }

    fn solve(
        &self,
        ctx: &SparkContext,
        adjacency: &Matrix,
        cfg: &SolverConfig,
    ) -> Result<ApspResult, ApspError> {
        if cfg.track_paths {
            return Err(ApspError::InvalidConfig(
                "path tracking (with_paths) is not supported by the cartesian ablation solver; use one of the six paper solvers".into(),
            ));
        }
        let n = adjacency.order();
        cfg.check(n)?;
        if cfg.validate_input {
            validate_adjacency(adjacency)?;
        }
        let start = Instant::now();
        let metrics_before = ctx.metrics();

        let b = cfg.block_size;
        let q = n.div_ceil(b);
        let partitioner = cfg.partitioner.build(q, cfg.partitions_for(ctx));
        let blocked = BlockedMatrix::from_matrix(ctx, adjacency, b, partitioner.clone());
        let mut a: Rdd<BlockRecord> = blocked.rdd.clone().persist();

        let squarings = (n.max(2) as f64).log2().ceil() as usize;
        for _ in 0..squarings {
            // Expand the upper triangle to full orientation on the fly, so
            // `cartesian` sees every (row-block, column-block) candidate.
            let full = a.flat_map(|((i, j), blk)| {
                let mut out = Vec::with_capacity(2);
                if i != j {
                    out.push(((j, i), blk.transpose()));
                }
                out.push(((i, j), blk));
                out
            });

            // cartesian → filter (inner indices must match) → MatProd →
            // reduceByKey(MatMin). Keep only upper-triangular results.
            let kern = cfg.kernel;
            let products = full
                .cartesian(&full)
                .filter(|(((_, k1), _), ((k2, _), _))| k1 == k2)
                .flat_map(move |(((i, _), left), ((_, j), right))| {
                    if i <= j {
                        vec![((i, j), left.min_plus_with(kern, &right))]
                    } else {
                        Vec::new()
                    }
                });
            let next = products
                .reduce_by_key(partitioner.clone(), |mut x, y| {
                    x.mat_min_assign(&y);
                    x
                })
                .persist();
            next.count()?;
            a.unpersist();
            a = next;
        }

        let result = blocked.with_rdd(a).collect_to_matrix()?;
        let metrics = ctx.metrics().delta(&metrics_before);
        Ok(ApspResult::new(
            result,
            metrics,
            start.elapsed(),
            squarings as u64,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RepeatedSquaring;
    use apsp_graph::{floyd_warshall as fw_oracle, generators};
    use sparklet::SparkConfig;

    fn ctx() -> SparkContext {
        SparkContext::new(SparkConfig::with_cores(4))
    }

    #[test]
    fn matches_oracle_at_demo_scale() {
        let g = generators::erdos_renyi_paper(24, 0.2, 6);
        let res = CartesianSquaring
            .solve(
                &ctx(),
                &g.to_dense(),
                &SolverConfig::new(8).with_partitions(4),
            )
            .unwrap();
        assert!(res.distances().approx_eq(&fw_oracle(&g), 1e-9).is_ok());
    }

    #[test]
    fn long_path_closure() {
        let g = generators::path(17);
        let res = CartesianSquaring
            .solve(
                &ctx(),
                &g.to_dense(),
                &SolverConfig::new(6).with_partitions(3),
            )
            .unwrap();
        assert_eq!(res.distances().get(0, 16), 16.0);
    }

    #[test]
    fn is_pure_no_side_channel() {
        let sc = ctx();
        let g = generators::erdos_renyi_paper(16, 0.2, 2);
        let res = CartesianSquaring
            .solve(&sc, &g.to_dense(), &SolverConfig::new(8).with_partitions(2))
            .unwrap();
        assert_eq!(res.metrics.side_channel_writes, 0);
        assert!(res.metrics.shuffles > 0);
    }

    #[test]
    fn cartesian_blowup_vs_column_sweeps() {
        // The ablation: same instance, both repeated-squaring variants
        // agree, and the cartesian formulation's blow-up is quantified.
        let g = generators::erdos_renyi_paper(32, 0.15, 3);
        let adj = g.to_dense();
        let cfg = SolverConfig::new(8).with_partitions(4).without_validation();

        let sc1 = ctx();
        let cart = CartesianSquaring.solve(&sc1, &adj, &cfg).unwrap();
        let sc2 = ctx();
        let sweep = RepeatedSquaring.solve(&sc2, &adj, &cfg).unwrap();
        assert!(cart.distances().approx_eq(sweep.distances(), 1e-9).is_ok());
    }

    #[test]
    fn cartesian_materializes_quadratic_candidates() {
        // The paper's complaint made measurable: `cartesian` yields
        // |A_full|² candidate pairs and P² partitions, of which only a
        // 1/q fraction survive the inner-index filter.
        let sc = ctx();
        let g = generators::erdos_renyi_paper(32, 0.15, 3);
        let q = 4usize; // n=32, b=8
        let parts = 4usize;
        let bm = crate::BlockedMatrix::from_matrix(
            &sc,
            &g.to_dense(),
            8,
            crate::PartitionerChoice::MultiDiagonal.build(q, parts),
        );
        let full = bm.rdd.flat_map(|((i, j), blk)| {
            let mut out = Vec::with_capacity(2);
            if i != j {
                out.push(((j, i), blk.transpose()));
            }
            out.push(((i, j), blk));
            out
        });
        let pairs = full.cartesian(&full);
        // P² partitions — with the paper's P = 2048 this is 4M tasks.
        assert_eq!(pairs.num_partitions(), parts * parts);
        // q⁴ candidate pairs materialized...
        assert_eq!(pairs.count().unwrap(), (q * q) * (q * q));
        // ...of which only q³ participate in the product.
        let useful = pairs
            .filter(|(((_, k1), _), ((k2, _), _))| k1 == k2)
            .count()
            .unwrap();
        assert_eq!(useful, q * q * q);
    }
}
