//! Path-tracking (parent-matrix) variants of the four Spark solvers.
//!
//! When a [`SolverConfig`] carries `with_paths()`, each solver's `solve`
//! dispatches here: the same algorithm skeletons run over
//! [`TrackedBlock`] records — a distance block paired with a
//! [`apsp_blockmat::ParentBlock`] of argmin ("via") entries — and every
//! block update goes through the tracked kernel tier
//! (`apsp_blockmat::kernels::select_tracked`).
//!
//! Three properties make this threading cheap:
//!
//! 1. **Operands stay plain.** A via cell records only the winning global
//!    `k`, so the staged diagonal/column copies (side channel, copy
//!    shuffles, broadcasts) remain untracked distance [`Block`]s — no new
//!    dissemination traffic beyond the `u32` grid riding on each stored
//!    record.
//! 2. **Transposition is free.** On undirected instances an interior
//!    vertex of a shortest `i → j` path is interior to the reversed path,
//!    so the upper-triangle storage (paper §4) mirrors tracked blocks by
//!    plain transposition, exactly like distances.
//! 3. **Strict-`<` updates compose.** Every relaxation either strictly
//!    improves a cell (and re-records its via) or leaves it alone, so any
//!    interleaving of phases/sweeps keeps each cell's `(distance, via)`
//!    pair consistent; at convergence `D(i,k) + D(k,j) = D(i,j)` holds for
//!    every recorded via, which is what `reconstruct` expands against.

use crate::blocks::BlockKey;
use crate::building_blocks::{extract_col_parts, in_column, on_diagonal};
use crate::solver::{validate_adjacency, ApspError, ApspResult, SolverConfig};
use apsp_blockmat::kernels::MinPlusKernel;
use apsp_blockmat::{Block, Matrix, Offsets, TrackedBlock, INF, NO_VIA};
use apsp_graph::paths::ParentMatrix;
use sparklet::{EstimateSize, Partitioner, Rdd, SparkContext, SparkError, SparkResult};
use std::sync::Arc;
use std::time::Instant;

/// One RDD record of a tracked solve: a keyed (distance, parent) block.
pub(crate) type TrackedRecord = (BlockKey, TrackedBlock);

/// The tracked twin of `BlockedMatrix`: upper-triangular tracked records
/// plus geometry.
pub(crate) struct TrackedBlockedMatrix {
    pub n: usize,
    pub b: usize,
    pub q: usize,
    pub rdd: Rdd<TrackedRecord>,
}

impl TrackedBlockedMatrix {
    /// Decomposes a dense symmetric adjacency matrix into upper-triangular
    /// tracked blocks (vias all [`NO_VIA`]: every finite adjacency entry
    /// is a direct edge).
    pub fn from_matrix(
        ctx: &SparkContext,
        m: &Matrix,
        b: usize,
        partitioner: Arc<dyn Partitioner<BlockKey>>,
    ) -> Self {
        let n = m.order();
        let q = n.div_ceil(b);
        let blocks = m.to_blocks(b);
        let mut records = Vec::with_capacity(q * (q + 1) / 2);
        for bi in 0..q {
            for bj in bi..q {
                records.push((
                    (bi, bj),
                    TrackedBlock::from_dist(blocks[bi * q + bj].clone()),
                ));
            }
        }
        let rdd = ctx.parallelize_by(records, partitioner);
        TrackedBlockedMatrix { n, b, q, rdd }
    }

    /// Rebuilds the dense distance matrix *and* the dense parent matrix
    /// from the distributed upper triangle, mirroring across the diagonal
    /// (valid for vias on undirected instances) and trimming padding.
    pub fn collect_to_parts(&self) -> SparkResult<(Matrix, ParentMatrix)> {
        let records = self.rdd.collect()?;
        let (n, b) = (self.n, self.b);
        let mut dist_blocks = Vec::with_capacity(records.len() * 2);
        let mut via = vec![NO_VIA; n * n];
        for ((bi, bj), tb) in records {
            for i in 0..b {
                let gi = bi * b + i;
                if gi >= n {
                    continue;
                }
                for j in 0..b {
                    let gj = bj * b + j;
                    if gj < n {
                        let v = tb.via().get(i, j);
                        via[gi * n + gj] = v;
                        via[gj * n + gi] = v; // undirected mirror
                    }
                }
            }
            let (dist, _) = tb.into_parts();
            if bi != bj {
                dist_blocks.push(((bj, bi), dist.transpose()));
            }
            dist_blocks.push(((bi, bj), dist));
        }
        Ok((
            Matrix::from_blocks(n, b, dist_blocks),
            ParentMatrix::from_vias(n, via),
        ))
    }
}

/// Shared prologue of the tracked solvers: validation, timing, and the
/// tracked decomposition.
struct TrackedRun {
    start: Instant,
    metrics_before: sparklet::MetricsSnapshot,
    blocked: TrackedBlockedMatrix,
    partitioner: Arc<dyn Partitioner<BlockKey>>,
}

fn begin(
    ctx: &SparkContext,
    adjacency: &Matrix,
    cfg: &SolverConfig,
) -> Result<TrackedRun, ApspError> {
    let n = adjacency.order();
    cfg.check(n)?;
    if cfg.validate_input {
        validate_adjacency(adjacency)?;
    }
    let start = Instant::now();
    let metrics_before = ctx.metrics();
    let b = cfg.block_size;
    let partitioner = cfg
        .partitioner
        .build(n.div_ceil(b), cfg.partitions_for(ctx));
    let blocked = TrackedBlockedMatrix::from_matrix(ctx, adjacency, b, partitioner.clone());
    Ok(TrackedRun {
        start,
        metrics_before,
        blocked,
        partitioner,
    })
}

fn finish(
    ctx: &SparkContext,
    run: TrackedRun,
    a: Rdd<TrackedRecord>,
    iterations: u64,
) -> Result<ApspResult, ApspError> {
    let closed = TrackedBlockedMatrix {
        n: run.blocked.n,
        b: run.blocked.b,
        q: run.blocked.q,
        rdd: a,
    };
    let (distances, parents) = closed.collect_to_parts()?;
    let metrics = ctx.metrics().delta(&run.metrics_before);
    Ok(ApspResult::new(distances, metrics, run.start.elapsed(), iterations).with_parents(parents))
}

// ---------------------------------------------------------------------------
// Blocked Collect/Broadcast (Algorithm 4), tracked
// ---------------------------------------------------------------------------

fn diag_key(iter: usize) -> String {
    format!("cbp:{iter}:diag")
}

fn col_key(iter: usize, t: usize) -> String {
    format!("cbp:{iter}:col:{t}")
}

fn col_t_key(iter: usize, t: usize) -> String {
    format!("cbp:{iter}:colT:{t}")
}

/// Tracked Algorithm 4: identical staging structure to the untracked
/// solver — Phase-1/2 results travel through the driver and shared storage
/// as plain distance blocks — with every update running tracked.
pub(crate) fn solve_cb(
    ctx: &SparkContext,
    adjacency: &Matrix,
    cfg: &SolverConfig,
) -> Result<ApspResult, ApspError> {
    let run = begin(ctx, adjacency, cfg)?;
    let (b, q) = (run.blocked.b, run.blocked.q);
    let partitioner = run.partitioner.clone();
    let mut a: Rdd<TrackedRecord> = run.blocked.rdd.clone().persist();
    let kern = cfg.kernel;

    for i in 0..q {
        // Phase 1: close the diagonal block (tracked), stage its distances.
        let diag_rdd = a
            .filter(move |(key, _)| on_diagonal(key, i))
            .map(move |(key, mut tb)| {
                tb.floyd_warshall_in_place(i * b);
                (key, tb)
            })
            .persist();
        let diag_records = diag_rdd.collect()?;
        let diag_block = diag_records
            .into_iter()
            .next()
            .ok_or_else(|| {
                ApspError::Engine(SparkError::User(format!("missing diagonal block {i}")))
            })?
            .1;
        ctx.side_channel()
            .put_block(diag_key(i), diag_block.dist().clone());

        // Phase 2: tracked MinPlus on the pivot cross against the staged
        // diagonal distances.
        let side = ctx.clone();
        let rowcol = a
            .filter(move |(key, _)| in_column(key, i) && !on_diagonal(key, i))
            .try_map(move |(key, mut tb)| {
                let d = side.side_channel().get_block_arc(&diag_key(i))?;
                if key.1 == i {
                    tb.min_plus_assign(kern, &d, Offsets::blocks(b, i, key.0, key.1));
                } else {
                    tb.min_plus_left_assign(kern, &d, Offsets::blocks(b, i, key.0, key.1));
                }
                Ok((key, tb))
            })
            .persist();
        for (key, tb) in rowcol.collect()? {
            // Stage both orientations of the cross distances, as in the
            // untracked solver; vias stay on the stored records.
            let dist = tb.dist().clone();
            let transposed = dist.transpose();
            let (t, canonical_block, transposed_block) = if key.1 == i {
                (key.0, dist, transposed)
            } else {
                (key.1, transposed, dist)
            };
            ctx.side_channel()
                .put_block(col_t_key(i, t), transposed_block);
            ctx.side_channel().put_block(col_key(i, t), canonical_block);
        }

        // Phase 3: tracked fold of the staged column products.
        let side = ctx.clone();
        let offcol =
            a.filter(move |(key, _)| !in_column(key, i))
                .try_map(move |((x, y), mut tb)| {
                    let c_x = side.side_channel().get_block_arc(&col_key(i, x))?;
                    let c_y_t = side.side_channel().get_block_arc(&col_t_key(i, y))?;
                    tb.min_plus_into_self(kern, &c_x, &c_y_t, Offsets::blocks(b, i, x, y));
                    Ok(((x, y), tb))
                });

        let next = diag_rdd
            .union_all(&[rowcol.clone(), offcol])
            .partition_by(partitioner.clone())
            .persist();
        next.count()?;
        ctx.side_channel().remove(&diag_key(i));
        for t in 0..q {
            ctx.side_channel().remove(&col_key(i, t));
            ctx.side_channel().remove(&col_t_key(i, t));
        }
        diag_rdd.unpersist();
        rowcol.unpersist();
        a.unpersist();
        a = next;
    }

    finish(ctx, run, a, q as u64)
}

// ---------------------------------------------------------------------------
// Blocked In-Memory (Algorithm 3), tracked
// ---------------------------------------------------------------------------

/// The tracked twin of `building_blocks::Piece`: only the resident block
/// carries vias; the `CopyDiag`/`CopyCol` replicas stay plain distances.
#[derive(Clone, Debug)]
enum TrackedPiece {
    /// The resident tracked block of `A`.
    Stored(TrackedBlock),
    /// A left operand (`A_Ii`, pre-oriented distance copy).
    Left(Block),
    /// A right operand (`A_iJ`, pre-oriented distance copy).
    Right(Block),
}

impl EstimateSize for TrackedPiece {
    fn estimate_bytes(&self) -> usize {
        8 + match self {
            TrackedPiece::Stored(t) => t.estimate_bytes(),
            TrackedPiece::Left(b) | TrackedPiece::Right(b) => b.estimate_bytes(),
        }
    }
}

/// Converts an operand `Piece` (from `copy_diag`/`copy_col`) into its
/// tracked-pipeline form.
///
/// # Panics
/// Panics on `Piece::Stored`, which the copy building blocks never emit.
fn promote(piece: crate::building_blocks::Piece) -> TrackedPiece {
    use crate::building_blocks::Piece;
    match piece {
        Piece::Left(b) => TrackedPiece::Left(b),
        Piece::Right(b) => TrackedPiece::Right(b),
        Piece::Stored(_) => unreachable!("copy building blocks never emit Stored"),
    }
}

/// `ListUnpack` + tracked `MatMin`: the tracked twin of
/// `building_blocks::unpack_and_update_with`.
fn unpack_tracked(
    kernel: MinPlusKernel,
    pieces: Vec<TrackedPiece>,
    pivot: usize,
    b: usize,
    key: BlockKey,
) -> TrackedBlock {
    let mut stored: Option<TrackedBlock> = None;
    let mut left: Option<Block> = None;
    let mut right: Option<Block> = None;
    for p in pieces {
        match p {
            TrackedPiece::Stored(t) => {
                assert!(stored.is_none(), "duplicate Stored piece in pairing list");
                stored = Some(t);
            }
            TrackedPiece::Left(b) => left = Some(b),
            TrackedPiece::Right(b) => right = Some(b),
        }
    }
    let mut a = stored.expect("pairing list lacks the Stored block");
    let offsets = Offsets::blocks(b, pivot, key.0, key.1);
    match (left, right) {
        (Some(l), Some(r)) => a.min_plus_into_self(kernel, &l, &r, offsets),
        (Some(l), None) => a.min_plus_left_assign(kernel, &l, offsets),
        (None, Some(r)) => a.min_plus_assign(kernel, &r, offsets),
        (None, None) => {}
    }
    a
}

/// Tracked Algorithm 3: diagonal and column copies replicate through the
/// same `CopyDiag`/`CopyCol` shuffles (as distance blocks); the stored
/// tracked records fold them in with the tracked kernels.
pub(crate) fn solve_im(
    ctx: &SparkContext,
    adjacency: &Matrix,
    cfg: &SolverConfig,
) -> Result<ApspResult, ApspError> {
    use crate::building_blocks::{copy_col, copy_diag};

    let run = begin(ctx, adjacency, cfg)?;
    let (b, q) = (run.blocked.b, run.blocked.q);
    let partitioner = run.partitioner.clone();
    let mut a: Rdd<TrackedRecord> = run.blocked.rdd.clone().persist();
    let kern = cfg.kernel;

    for i in 0..q {
        // Phase 1: tracked diagonal closure + CopyDiag of its distances.
        let diag_rdd = a
            .filter(move |(key, _)| on_diagonal(key, i))
            .map(move |(key, mut tb)| {
                tb.floyd_warshall_in_place(i * b);
                (key, tb)
            })
            .persist();
        let diag_copies = diag_rdd.flat_map(move |(_, d)| {
            copy_diag(i, d.dist(), q)
                .into_iter()
                .map(|(key, piece)| (key, promote(piece)))
                .collect()
        });

        // Phase 2: pair cross blocks with the diagonal copies and resolve.
        let cross_stored = a
            .filter(move |(key, _)| in_column(key, i) && !on_diagonal(key, i))
            .map(|(key, tb)| (key, TrackedPiece::Stored(tb)));
        let phase2: Rdd<TrackedRecord> = cross_stored
            .union(&diag_copies)
            .combine_by_key(
                partitioner.clone(),
                |p| vec![p],
                |mut list, p| {
                    list.push(p);
                    list
                },
                |mut a, mut b| {
                    a.append(&mut b);
                    a
                },
            )
            .map(move |(key, pieces)| (key, unpack_tracked(kern, pieces, i, b, key)))
            .persist();

        // CopyCol of the updated cross distances to the Phase-3 targets.
        let copies = phase2.flat_map(move |(key, tb)| {
            let (t, canonical_block) = if key.1 == i {
                (key.0, tb.dist().clone())
            } else {
                (key.1, tb.dist().transpose())
            };
            copy_col(t, i, &canonical_block, q)
                .into_iter()
                .map(|(key, piece)| (key, promote(piece)))
                .collect()
        });

        // Phase 3: pair and resolve the remaining blocks.
        let off_stored = a
            .filter(move |(key, _)| !in_column(key, i))
            .map(|(key, tb)| (key, TrackedPiece::Stored(tb)));
        let phase3: Rdd<TrackedRecord> = off_stored
            .union(&copies)
            .combine_by_key(
                partitioner.clone(),
                |p| vec![p],
                |mut list, p| {
                    list.push(p);
                    list
                },
                |mut a, mut b| {
                    a.append(&mut b);
                    a
                },
            )
            .map(move |(key, pieces)| (key, unpack_tracked(kern, pieces, i, b, key)));

        let next = diag_rdd
            .union_all(&[phase2.clone(), phase3])
            .partition_by(partitioner.clone())
            .persist();
        next.count()?;
        diag_rdd.unpersist();
        phase2.unpersist();
        a.unpersist();
        a = next;
    }

    finish(ctx, run, a, q as u64)
}

// ---------------------------------------------------------------------------
// 2D Floyd-Warshall (Algorithm 2), tracked
// ---------------------------------------------------------------------------

/// Tracked Algorithm 2: the broadcast pivot column stays a plain `f64`
/// vector; every block applies the tracked rank-1 update, recording the
/// (single, global) pivot as the via.
pub(crate) fn solve_fw2d(
    ctx: &SparkContext,
    adjacency: &Matrix,
    cfg: &SolverConfig,
) -> Result<ApspResult, ApspError> {
    let n = adjacency.order();
    let run = begin(ctx, adjacency, cfg)?;
    let (b, q) = (run.blocked.b, run.blocked.q);
    let mut a: Rdd<TrackedRecord> = run.blocked.rdd.clone().persist();
    let mut prev: Option<Rdd<TrackedRecord>> = None;

    for k in 0..n {
        let pivot_block = k / b;
        let k_local = k % b;

        let segments = a
            .filter(move |(key, _)| in_column(key, pivot_block))
            .flat_map(move |(key, tb)| extract_col_parts(&key, tb.dist(), pivot_block, k_local))
            .collect()?;
        let mut column = vec![INF; q * b];
        for (row_block, values) in segments {
            column[row_block * b..row_block * b + b].copy_from_slice(&values);
        }
        let bcast = ctx.broadcast(column);

        let col = bcast.clone();
        let next = a
            .map(move |((i, j), mut tb)| {
                let col_i = &col.value()[i * b..i * b + b];
                let col_j = &col.value()[j * b..j * b + b];
                tb.fw_update_outer(col_i, col_j, k);
                ((i, j), tb)
            })
            .persist();

        if let Some(old) = prev.take() {
            old.unpersist();
        }
        prev = Some(a);
        a = next;
    }

    finish(ctx, run, a, n as u64)
}

// ---------------------------------------------------------------------------
// Repeated squaring (Algorithm 1), tracked
// ---------------------------------------------------------------------------

fn rs_col_key(step: usize, j: usize, k: usize) -> String {
    format!("rsp:{step}:{j}:{k}")
}

/// Tracked Algorithm 1: column sweeps stage distance blocks exactly as the
/// untracked solver. Each sweep target `(X, J)` receives one **seeded**
/// contribution (its own stored record folded with `min(self, self ⊗ C_J)`)
/// plus unseeded tracked partial products from the other records; the
/// `reduceByKey` merge is the tracked `MatMin`, whose strict-`<` rule keeps
/// the seeded estimate on ties — the seeding contract the tracked product
/// kernels rely on (see `apsp_blockmat::parent`).
pub(crate) fn solve_rs(
    ctx: &SparkContext,
    adjacency: &Matrix,
    cfg: &SolverConfig,
) -> Result<ApspResult, ApspError> {
    let n = adjacency.order();
    let run = begin(ctx, adjacency, cfg)?;
    let (b, q) = (run.blocked.b, run.blocked.q);
    let partitioner = run.partitioner.clone();
    let mut a: Rdd<TrackedRecord> = run.blocked.rdd.clone().persist();
    let kern = cfg.kernel;

    let squarings = (n.max(2) as f64).log2().ceil() as usize;
    let mut sweeps_done = 0u64;

    for step in 0..squarings {
        let mut sweeps: Vec<Rdd<TrackedRecord>> = Vec::with_capacity(q);
        for j in 0..q {
            // Stage column J's distance blocks in canonical orientation.
            for ((x, y), tb) in a.filter(move |(key, _)| in_column(key, j)).collect()? {
                if y == j {
                    ctx.side_channel()
                        .put_block(rs_col_key(step, j, x), tb.dist().clone());
                }
                if x == j && x != y {
                    ctx.side_channel()
                        .put_block(rs_col_key(step, j, y), tb.dist().transpose());
                }
            }

            let side = ctx.clone();
            let contributions = a.try_flat_map(move |((rec_i, rec_k), tb)| {
                let mut out: Vec<TrackedRecord> = Vec::with_capacity(2);
                if rec_i <= j {
                    let c_k = side
                        .side_channel()
                        .get_block_arc(&rs_col_key(step, j, rec_k))?;
                    if rec_k == j {
                        // The target's own record: the seeded contribution.
                        let mut seeded = tb.clone();
                        seeded.min_plus_assign(kern, &c_k, Offsets::blocks(b, rec_k, rec_i, j));
                        out.push(((rec_i, j), seeded));
                    } else {
                        out.push((
                            (rec_i, j),
                            TrackedBlock::min_plus_product(
                                kern,
                                tb.dist(),
                                &c_k,
                                Offsets::blocks(b, rec_k, rec_i, j),
                            ),
                        ));
                    }
                }
                if rec_k <= j && rec_i != rec_k {
                    let c_i = side
                        .side_channel()
                        .get_block_arc(&rs_col_key(step, j, rec_i))?;
                    out.push((
                        (rec_k, j),
                        TrackedBlock::min_plus_product(
                            kern,
                            &tb.dist().transpose(),
                            &c_i,
                            Offsets::blocks(b, rec_i, rec_k, j),
                        ),
                    ));
                }
                Ok(out)
            });
            let t_j = contributions.reduce_by_key(partitioner.clone(), |mut x, y| {
                x.mat_min_assign(&y);
                x
            });
            sweeps.push(t_j);
            sweeps_done += 1;
        }

        let next = sweeps[0].union_all(&sweeps[1..]).persist();
        next.count()?;
        for j in 0..q {
            for k in 0..q {
                ctx.side_channel().remove(&rs_col_key(step, j, k));
            }
        }
        a.unpersist();
        a = next;
    }

    finish(ctx, run, a, sweeps_done)
}

#[cfg(test)]
mod tests {
    use crate::solver::{ApspSolver, SolverConfig};
    use crate::{BlockedCollectBroadcast, BlockedInMemory, FloydWarshall2D, RepeatedSquaring};
    use apsp_graph::{dijkstra, generators};
    use sparklet::{SparkConfig, SparkContext};

    fn ctx() -> SparkContext {
        SparkContext::new(SparkConfig::with_cores(4))
    }

    fn check_solver(solver: &dyn ApspSolver, n: usize, b: usize, seed: u64) {
        let g = generators::erdos_renyi_paper(n, 0.1, seed);
        let adj = g.to_dense();
        let res = solver
            .solve(&ctx(), &adj, &SolverConfig::new(b).with_paths())
            .unwrap_or_else(|e| panic!("{} failed: {e}", solver.name()));
        assert!(
            res.parents().is_some(),
            "{} returned no parents",
            solver.name()
        );
        let oracle = dijkstra::apsp_dijkstra(&g);
        assert!(
            res.distances().approx_eq(&oracle, 1e-9).is_ok(),
            "{}: tracked distances diverge from Dijkstra",
            solver.name()
        );
        let dap = res.into_paths().unwrap();
        dap.validate_against(&adj, 1e-9)
            .unwrap_or_else(|e| panic!("{}: {e}", solver.name()));
    }

    #[test]
    fn tracked_cb_round_trips() {
        check_solver(&BlockedCollectBroadcast, 60, 16, 7);
        check_solver(&BlockedCollectBroadcast, 45, 16, 15); // uneven tail
    }

    #[test]
    fn tracked_im_round_trips() {
        check_solver(&BlockedInMemory, 60, 16, 8);
        check_solver(&BlockedInMemory, 30, 15, 31);
    }

    #[test]
    fn tracked_fw2d_round_trips() {
        check_solver(&FloydWarshall2D, 37, 8, 3);
    }

    #[test]
    fn tracked_rs_round_trips() {
        check_solver(&RepeatedSquaring, 48, 12, 44);
        check_solver(&RepeatedSquaring, 29, 9, 5);
    }

    #[test]
    fn tracked_matches_untracked_distances_exactly_per_solver() {
        // Tracking must be a pure observer: the distance matrix of a
        // tracked solve is bit-identical to the untracked solve for the
        // blocked solvers (same relaxation order, strict-< vs min is
        // value-equivalent).
        let g = generators::erdos_renyi_paper(40, 0.1, 12);
        let adj = g.to_dense();
        for solver in [
            &BlockedCollectBroadcast as &dyn ApspSolver,
            &BlockedInMemory,
            &FloydWarshall2D,
        ] {
            let plain = solver.solve(&ctx(), &adj, &SolverConfig::new(12)).unwrap();
            let tracked = solver
                .solve(&ctx(), &adj, &SolverConfig::new(12).with_paths())
                .unwrap();
            assert!(
                tracked
                    .distances()
                    .approx_eq(plain.distances(), 0.0)
                    .is_ok(),
                "{}: tracked distances not bit-identical",
                solver.name()
            );
        }
    }

    #[test]
    fn long_path_graph_reconstructs_every_pair() {
        // Worst case for via recursion depth: all-pairs paths on a line.
        let g = generators::path(40);
        let adj = g.to_dense();
        let res = BlockedCollectBroadcast
            .solve(&ctx(), &adj, &SolverConfig::new(8).with_paths())
            .unwrap();
        let dap = res.into_paths().unwrap();
        for i in 0..40 {
            for j in 0..40 {
                let p = dap.reconstruct(i, j).unwrap();
                assert_eq!(p.len(), i.abs_diff(j) + 1, "({i},{j})");
            }
        }
    }

    #[test]
    fn disconnected_pairs_reconstruct_to_none() {
        let mut g = apsp_graph::Graph::new(12);
        g.add_edge(0, 1, 3.0);
        g.add_edge(5, 7, 1.0);
        let res = BlockedInMemory
            .solve(&ctx(), &g.to_dense(), &SolverConfig::new(4).with_paths())
            .unwrap();
        let dap = res.into_paths().unwrap();
        assert_eq!(dap.reconstruct(0, 5), None);
        assert_eq!(dap.reconstruct(0, 1), Some(vec![0, 1]));
        assert_eq!(dap.reconstruct(7, 5), Some(vec![7, 5]));
    }

    #[test]
    fn non_tracking_solvers_reject_with_paths() {
        use crate::solver::ApspError;
        let g = generators::cycle(8);
        let cfg = SolverConfig::new(4).with_paths();
        for solver in [
            &crate::CartesianSquaring as &dyn ApspSolver,
            &crate::DistributedJohnson,
        ] {
            let err = solver.solve(&ctx(), &g.to_dense(), &cfg).unwrap_err();
            assert!(
                matches!(err, ApspError::InvalidConfig(_)),
                "{} must reject with_paths explicitly",
                solver.name()
            );
        }
    }

    #[test]
    fn untracked_solve_has_no_parents() {
        let g = generators::cycle(10);
        let res = BlockedCollectBroadcast
            .solve(&ctx(), &g.to_dense(), &SolverConfig::new(4))
            .unwrap();
        assert!(res.parents().is_none());
        assert!(res.into_paths().is_none());
    }
}
