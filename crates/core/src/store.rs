//! Persistent closure store: versioned on-disk blocks behind an LRU
//! point-query cache.
//!
//! The paper's premise is that the blocked closure is the expensive
//! artifact — O(n²) data produced by O(n³) work — yet a
//! [`Solution`](crate::plan::Solution) historically died with the
//! process. This module gives it a disk form:
//!
//! ```text
//! <dir>/store-blk-<bi>-<bj>   framed block: u32 bi, u32 bj, u64 side,
//!                             value plane (f64 or bool), via plane (u32,
//!                             tracked stores only)
//! <dir>/store-manifest        framed store manifest (written last — the
//!                             commit point)
//! ```
//!
//! Every file reuses the checkpoint frame envelope
//! ([`apsp_blockmat::serialize::frame`]: magic, version, kind, length,
//! FNV-1a checksum), with the manifest under its own kind tag
//! ([`FRAME_KIND_STORE_MANIFEST`]). The **manifest is written last**: a
//! directory without one is not a store, so a crash mid-save can at worst
//! leave unreferenced block files, never a store that opens and lies.
//!
//! Unlike a checkpoint (upper-triangle, one round of a running solve), a
//! store holds the **full `q × q` block grid** of a *finished* closure —
//! directed solutions are representable, and a point query touches
//! exactly one block with no transpose bookkeeping. Blocks are loaded
//! lazily through a byte-budgeted [`ByteLruCache`], so point queries
//! against a closure far larger than memory stay cheap; cache behaviour
//! is observable through the `store_cache_*` counters of
//! [`sparklet::MetricsSnapshot`].

use crate::checkpoint::{self, Manifest as CkptManifest};
use crate::plan::{SolverId, Workload};
use crate::solver::ApspError;
use apsp_blockmat::serialize::{
    decode_plane, encode_plane, frame, unframe, DecodeError, Wire, FRAME_KIND_BLOCK,
    FRAME_KIND_MANIFEST, FRAME_KIND_STORE_MANIFEST,
};
use apsp_blockmat::{
    AlgBlock, PathAlgebra, Reachability, TrackedReachability, TrackedTropical, TrackedWidest,
    Tropical, Widest, INF, NO_VIA,
};
use apsp_graph::paths::{expand_vias_with, NodeId};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use sparklet::cache::ByteLruCache;
use sparklet::{Metrics, MetricsSnapshot};
use std::path::{Path, PathBuf};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex, PoisonError};

/// Default cache budget for [`ClosureStore::open`]: 64 MiB of decoded
/// blocks — a few thousand `b = 128` distance blocks.
pub const DEFAULT_STORE_CACHE_BUDGET: u64 = 64 << 20;

/// Upper bound on accepted store dimensions (mirrors the serializer's
/// header guard: a corrupt manifest must not drive huge allocations).
const MAX_STORE_DIM: u64 = 1 << 20;

const MANIFEST_FILE: &str = "store-manifest";

fn block_file(bi: usize, bj: usize) -> String {
    format!("store-blk-{bi}-{bj}")
}

fn store_err(msg: impl Into<String>) -> ApspError {
    ApspError::Store(msg.into())
}

fn frame_err(what: &str, name: &str, e: DecodeError) -> ApspError {
    store_err(format!("{what} '{name}' is not a valid store frame: {e}"))
}

// ---------------------------------------------------------------------------
// Solver and workload tags
// ---------------------------------------------------------------------------

/// Stable on-disk tag for a solver identity (matches the CLI names and
/// the checkpoint manifests' solver field for the engine solvers).
pub(crate) fn solver_tag(id: SolverId) -> &'static str {
    match id {
        SolverId::BlockedCollectBroadcast => "cb",
        SolverId::BlockedInMemory => "im",
        SolverId::FloydWarshall2D => "fw2d",
        SolverId::RepeatedSquaring => "rs",
        SolverId::CartesianSquaring => "cartesian",
        SolverId::DistributedJohnson => "johnson",
        SolverId::MpiFw2d => "mpi-fw2d",
        SolverId::MpiDc => "mpi-dc",
        SolverId::DirectedBlockedCB => "directed-cb",
        SolverId::DirectedFloydWarshall2D => "directed-fw2d",
        SolverId::SparseHierarchical => "hierarchical",
    }
}

pub(crate) fn solver_from_tag(tag: &str) -> Option<SolverId> {
    SolverId::ALL.into_iter().find(|id| solver_tag(*id) == tag)
}

fn workload_from_label(label: &str) -> Option<Workload> {
    [
        Workload::ShortestPaths,
        Workload::Widest,
        Workload::Reachability,
    ]
    .into_iter()
    .find(|w| w.label() == label)
}

// ---------------------------------------------------------------------------
// Store manifest
// ---------------------------------------------------------------------------

/// Identity + geometry of a store, framed under
/// [`FRAME_KIND_STORE_MANIFEST`] as the commit record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct StoreManifest {
    pub(crate) workload: String,
    pub(crate) solver: String,
    pub(crate) tracked: bool,
    pub(crate) directed: bool,
    pub(crate) n: u64,
    pub(crate) b: u64,
    pub(crate) q: u64,
    pub(crate) block_count: u64,
}

impl StoreManifest {
    fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(64 + self.workload.len() + self.solver.len());
        buf.put_u32_le(self.workload.len() as u32);
        buf.put_slice(self.workload.as_bytes());
        buf.put_u32_le(self.solver.len() as u32);
        buf.put_slice(self.solver.as_bytes());
        buf.put_u8(self.tracked as u8);
        buf.put_u8(self.directed as u8);
        for v in [self.n, self.b, self.q, self.block_count] {
            buf.put_u64_le(v);
        }
        buf.freeze()
    }

    fn decode(mut body: &[u8]) -> Result<Self, DecodeError> {
        let string = |body: &mut &[u8]| -> Result<String, DecodeError> {
            if body.remaining() < 4 {
                return Err(DecodeError::Truncated {
                    expected: 4,
                    actual: body.remaining(),
                });
            }
            let len = body.get_u32_le() as usize;
            if body.remaining() < len {
                return Err(DecodeError::Truncated {
                    expected: len,
                    actual: body.remaining(),
                });
            }
            Ok(String::from_utf8_lossy(body.take_bytes(len)).into_owned())
        };
        let workload = string(&mut body)?;
        let solver = string(&mut body)?;
        if body.remaining() < 2 + 4 * 8 {
            return Err(DecodeError::Truncated {
                expected: 2 + 4 * 8,
                actual: body.remaining(),
            });
        }
        let tracked = body.get_u8() != 0;
        let directed = body.get_u8() != 0;
        let mut word = || body.get_u64_le();
        Ok(StoreManifest {
            workload,
            solver,
            tracked,
            directed,
            n: word(),
            b: word(),
            q: word(),
            block_count: word(),
        })
    }
}

// ---------------------------------------------------------------------------
// Decoded blocks
// ---------------------------------------------------------------------------

/// One decoded value plane: numeric for the (min, +) and (max, min)
/// workloads, boolean for transitive closure.
enum Plane {
    F64(Vec<f64>),
    Bool(Vec<bool>),
}

impl Plane {
    fn bytes(&self) -> u64 {
        match self {
            Plane::F64(v) => (v.len() * 8) as u64,
            Plane::Bool(v) => v.len() as u64,
        }
    }
}

/// One resident block: the value plane plus the via plane for tracked
/// stores. `side` is always the store's block size `b` (edge blocks are
/// padded with unreachable cells at save time).
struct StoredBlock {
    side: usize,
    values: Plane,
    vias: Option<Vec<u32>>,
}

impl StoredBlock {
    fn size_bytes(&self) -> u64 {
        self.values.bytes() + self.vias.as_ref().map_or(0, |v| (v.len() * 4) as u64)
    }
}

// ---------------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------------

/// Block-at-a-time store writer enforcing the manifest-written-last
/// commit protocol: `begin` removes any previous manifest (un-committing
/// the old store before its blocks are overwritten), `put_block` streams
/// framed blocks, `commit` frames and writes the manifest.
struct StoreWriter {
    dir: PathBuf,
}

impl StoreWriter {
    fn begin(dir: &Path) -> Result<Self, ApspError> {
        std::fs::create_dir_all(dir).map_err(|e| {
            store_err(format!(
                "cannot create store directory '{}': {e}",
                dir.display()
            ))
        })?;
        let manifest = dir.join(MANIFEST_FILE);
        if manifest.exists() {
            std::fs::remove_file(&manifest).map_err(|e| {
                store_err(format!(
                    "cannot clear previous store manifest '{}': {e}",
                    manifest.display()
                ))
            })?;
        }
        Ok(StoreWriter {
            dir: dir.to_path_buf(),
        })
    }

    fn put_block(
        &self,
        bi: usize,
        bj: usize,
        side: usize,
        values: &Plane,
        vias: Option<&[u32]>,
    ) -> Result<(), ApspError> {
        let value_bytes = match values {
            Plane::F64(_) => 8,
            Plane::Bool(_) => 1,
        };
        let mut body = BytesMut::with_capacity(
            16 + side * side * (value_bytes + if vias.is_some() { 4 } else { 0 }),
        );
        body.put_u32_le(bi as u32);
        body.put_u32_le(bj as u32);
        body.put_u64_le(side as u64);
        match values {
            Plane::F64(v) => encode_plane(v, &mut body),
            Plane::Bool(v) => encode_plane(v, &mut body),
        }
        if let Some(vias) = vias {
            encode_plane(vias, &mut body);
        }
        let framed = frame(FRAME_KIND_BLOCK, &body);
        let path = self.dir.join(block_file(bi, bj));
        std::fs::write(&path, &framed).map_err(|e| {
            store_err(format!(
                "cannot write store block '{}': {e}",
                path.display()
            ))
        })
    }

    fn commit(self, manifest: &StoreManifest) -> Result<(), ApspError> {
        let framed = frame(FRAME_KIND_STORE_MANIFEST, &manifest.encode());
        let path = self.dir.join(MANIFEST_FILE);
        std::fs::write(&path, &framed).map_err(|e| {
            store_err(format!(
                "cannot write store manifest '{}': {e}",
                path.display()
            ))
        })
    }
}

/// How the saver reads closure values out of an in-memory solution.
pub(crate) enum ValueSource<'a> {
    /// Numeric closure cells (distances or widths).
    F64(&'a dyn Fn(usize, usize) -> f64),
    /// Boolean closure cells (reachability).
    Bool(&'a dyn Fn(usize, usize) -> bool),
}

/// Everything [`write_store`] needs to lay a solution down on disk.
pub(crate) struct StoreContents<'a> {
    pub(crate) workload: Workload,
    pub(crate) solver: SolverId,
    pub(crate) directed: bool,
    pub(crate) n: usize,
    pub(crate) b: usize,
    pub(crate) values: ValueSource<'a>,
    pub(crate) vias: Option<&'a dyn Fn(usize, usize) -> u32>,
}

/// Writes the full `q × q` block grid plus the manifest (last). Edge
/// blocks are padded to side `b` with unreachable cells, so every block
/// frame has identical geometry and the cache's byte accounting is
/// uniform.
pub(crate) fn write_store(dir: &Path, c: &StoreContents<'_>) -> Result<(), ApspError> {
    if c.n == 0 || c.b == 0 || c.b > c.n {
        return Err(store_err(format!(
            "cannot save a store with n = {} and block size {}",
            c.n, c.b
        )));
    }
    let q = c.n.div_ceil(c.b);
    let writer = StoreWriter::begin(dir)?;
    let cells = c.b * c.b;
    for bi in 0..q {
        for bj in 0..q {
            let cell = |li: usize, lj: usize| (bi * c.b + li, bj * c.b + lj);
            let in_range = |li: usize, lj: usize| {
                let (gi, gj) = cell(li, lj);
                gi < c.n && gj < c.n
            };
            let values = match &c.values {
                ValueSource::F64(get) => {
                    let pad = match c.workload {
                        Workload::Widest => 0.0,
                        _ => INF,
                    };
                    let mut plane = Vec::with_capacity(cells);
                    for li in 0..c.b {
                        for lj in 0..c.b {
                            let (gi, gj) = cell(li, lj);
                            plane.push(if in_range(li, lj) { get(gi, gj) } else { pad });
                        }
                    }
                    Plane::F64(plane)
                }
                ValueSource::Bool(get) => {
                    let mut plane = Vec::with_capacity(cells);
                    for li in 0..c.b {
                        for lj in 0..c.b {
                            let (gi, gj) = cell(li, lj);
                            plane.push(in_range(li, lj) && get(gi, gj));
                        }
                    }
                    Plane::Bool(plane)
                }
            };
            let vias = c.vias.map(|get| {
                let mut plane = Vec::with_capacity(cells);
                for li in 0..c.b {
                    for lj in 0..c.b {
                        let (gi, gj) = cell(li, lj);
                        plane.push(if in_range(li, lj) {
                            get(gi, gj)
                        } else {
                            NO_VIA
                        });
                    }
                }
                plane
            });
            writer.put_block(bi, bj, c.b, &values, vias.as_deref())?;
        }
    }
    writer.commit(&StoreManifest {
        workload: c.workload.label().to_string(),
        solver: solver_tag(c.solver).to_string(),
        tracked: c.vias.is_some(),
        directed: c.directed,
        n: c.n as u64,
        b: c.b as u64,
        q: q as u64,
        block_count: (q * q) as u64,
    })
}

// ---------------------------------------------------------------------------
// The store handle
// ---------------------------------------------------------------------------

/// A read handle over a committed on-disk closure: geometry-validated at
/// open, blocks loaded lazily through a byte-budgeted LRU cache, point
/// queries answered without ever materializing the full matrix.
///
/// Produced by [`Solution::open`](crate::plan::Solution::open) (which
/// wraps it back into a `Solution`) or opened directly for lower-level
/// access. All queries are `&self`; the cache sits behind a mutex, so a
/// store can be shared across threads.
pub struct ClosureStore {
    dir: PathBuf,
    workload: Workload,
    tracked: bool,
    solver: SolverId,
    directed: bool,
    n: usize,
    b: usize,
    q: usize,
    metrics: Arc<Metrics>,
    cache: Mutex<ByteLruCache<(usize, usize), StoredBlock>>,
}

impl ClosureStore {
    /// Opens a committed store with the default cache budget
    /// ([`DEFAULT_STORE_CACHE_BUDGET`]).
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, ApspError> {
        Self::open_with_budget(dir, DEFAULT_STORE_CACHE_BUDGET)
    }

    /// Opens a committed store, bounding the decoded-block cache at
    /// `cache_budget_bytes`. Validates the manifest frame (magic,
    /// version, checksum, kind), the workload and solver tags, and the
    /// geometry (`q = ⌈n / b⌉`, `block_count = q²`) before returning;
    /// block contents are validated lazily as queries touch them.
    pub fn open_with_budget(
        dir: impl Into<PathBuf>,
        cache_budget_bytes: u64,
    ) -> Result<Self, ApspError> {
        let dir = dir.into();
        let path = dir.join(MANIFEST_FILE);
        let raw = std::fs::read(&path).map_err(|e| {
            store_err(format!(
                "no committed store under '{}': cannot read manifest: {e}",
                dir.display()
            ))
        })?;
        let (kind, body) =
            unframe(&raw).map_err(|e| frame_err("store manifest", MANIFEST_FILE, e))?;
        if kind != FRAME_KIND_STORE_MANIFEST {
            return Err(frame_err(
                "store manifest",
                MANIFEST_FILE,
                DecodeError::BadKind(kind),
            ));
        }
        let m = StoreManifest::decode(body)
            .map_err(|e| frame_err("store manifest", MANIFEST_FILE, e))?;
        let workload = workload_from_label(&m.workload).ok_or_else(|| {
            store_err(format!(
                "store manifest names unknown workload '{}'",
                m.workload
            ))
        })?;
        let solver = solver_from_tag(&m.solver).ok_or_else(|| {
            store_err(format!(
                "store manifest names unknown solver '{}'",
                m.solver
            ))
        })?;
        if m.n == 0 || m.b == 0 || m.n > MAX_STORE_DIM || m.b > m.n {
            return Err(store_err(format!(
                "store manifest declares implausible geometry: n = {}, b = {}",
                m.n, m.b
            )));
        }
        let (n, b) = (m.n as usize, m.b as usize);
        let q = n.div_ceil(b);
        if m.q != q as u64 || m.block_count != (q * q) as u64 {
            return Err(store_err(format!(
                "store manifest geometry mismatch: n = {n}, b = {b} imply q = {q} \
                 and {} blocks, but the manifest declares q = {} and {} blocks",
                q * q,
                m.q,
                m.block_count
            )));
        }
        let metrics = Arc::new(Metrics::default());
        let cache = Mutex::new(ByteLruCache::with_metrics(
            cache_budget_bytes,
            Arc::clone(&metrics),
        ));
        Ok(ClosureStore {
            dir,
            workload,
            tracked: m.tracked,
            solver,
            directed: m.directed,
            n,
            b,
            q,
            metrics,
            cache,
        })
    }

    /// Vertex count `n`.
    pub fn order(&self) -> usize {
        self.n
    }

    /// Stored block side `b`.
    pub fn block_size(&self) -> usize {
        self.b
    }

    /// Blocks per side (`q = ⌈n / b⌉`).
    pub fn blocks_per_side(&self) -> usize {
        self.q
    }

    /// The workload this closure answers.
    pub fn workload(&self) -> Workload {
        self.workload
    }

    /// Whether the store carries a via plane (witness paths).
    pub fn tracked(&self) -> bool {
        self.tracked
    }

    /// Whether the closure was solved over a directed input.
    pub fn directed(&self) -> bool {
        self.directed
    }

    /// The solver that produced the stored closure.
    pub fn solver(&self) -> SolverId {
        self.solver
    }

    /// The directory backing this store.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Point-in-time copy of this store's counters — `store_cache_hits`,
    /// `store_cache_misses`, `store_cache_evictions`,
    /// `store_blocks_read`, `store_bytes_read`.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// The configured cache budget in bytes.
    pub fn cache_budget_bytes(&self) -> u64 {
        self.cache
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .budget_bytes()
    }

    fn check_node(&self, what: &str, id: usize) -> Result<(), ApspError> {
        if id >= self.n {
            return Err(ApspError::InvalidInput(format!(
                "{what} node id {id} is out of range for n = {}",
                self.n
            )));
        }
        Ok(())
    }

    /// Loads (or re-uses) the decoded block `(bi, bj)` through the cache.
    fn block(&self, bi: usize, bj: usize) -> Result<Arc<StoredBlock>, ApspError> {
        let mut cache = self.cache.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(blk) = cache.get(&(bi, bj)) {
            return Ok(blk);
        }
        let name = block_file(bi, bj);
        let path = self.dir.join(&name);
        let raw = std::fs::read(&path)
            .map_err(|e| store_err(format!("cannot read store block '{}': {e}", path.display())))?;
        self.metrics
            .store_blocks_read
            .fetch_add(1, Ordering::Relaxed);
        self.metrics
            .store_bytes_read
            .fetch_add(raw.len() as u64, Ordering::Relaxed);
        let blk = self.decode_block(&name, &raw, bi, bj)?;
        let weight = blk.size_bytes();
        Ok(cache.insert((bi, bj), blk, weight))
    }

    fn decode_block(
        &self,
        name: &str,
        raw: &[u8],
        bi: usize,
        bj: usize,
    ) -> Result<StoredBlock, ApspError> {
        let (kind, mut body) = unframe(raw).map_err(|e| frame_err("store block", name, e))?;
        if kind != FRAME_KIND_BLOCK {
            return Err(frame_err("store block", name, DecodeError::BadKind(kind)));
        }
        if body.remaining() < 16 {
            return Err(frame_err(
                "store block",
                name,
                DecodeError::Truncated {
                    expected: 16,
                    actual: body.remaining(),
                },
            ));
        }
        let (got_bi, got_bj) = (body.get_u32_le() as usize, body.get_u32_le() as usize);
        if (got_bi, got_bj) != (bi, bj) {
            return Err(store_err(format!(
                "store block '{name}' is keyed ({bi}, {bj}) but stamped ({got_bi}, {got_bj})"
            )));
        }
        let side = body.get_u64_le();
        if side != self.b as u64 {
            return Err(store_err(format!(
                "store block '{name}' has side {side}, but the manifest declares b = {}",
                self.b
            )));
        }
        let cells = self.b * self.b;
        let values = match self.workload {
            Workload::Reachability => Plane::Bool(
                decode_plane::<bool>(&mut body, cells)
                    .map_err(|e| frame_err("store block", name, e))?,
            ),
            _ => Plane::F64(
                decode_plane::<f64>(&mut body, cells)
                    .map_err(|e| frame_err("store block", name, e))?,
            ),
        };
        let vias = if self.tracked {
            Some(
                decode_plane::<u32>(&mut body, cells)
                    .map_err(|e| frame_err("store block", name, e))?,
            )
        } else {
            None
        };
        Ok(StoredBlock {
            side: self.b,
            values,
            vias,
        })
    }

    /// The numeric value of closure cell `(u, v)` under the submatrix
    /// conventions: distances ([`INF`] when unreachable), widths (`0.0`
    /// when unreachable), or `1.0`/`0.0` reachability cells.
    pub fn cell(&self, u: usize, v: usize) -> Result<f64, ApspError> {
        self.check_node("source", u)?;
        self.check_node("target", v)?;
        let blk = self.block(u / self.b, v / self.b)?;
        let idx = (u % self.b) * blk.side + (v % self.b);
        Ok(match &blk.values {
            Plane::F64(vals) => vals[idx],
            Plane::Bool(vals) => {
                if vals[idx] {
                    1.0
                } else {
                    0.0
                }
            }
        })
    }

    /// Whether `v` is reachable from `u` in the stored closure.
    pub fn reachable(&self, u: usize, v: usize) -> Result<bool, ApspError> {
        let cell = self.cell(u, v)?;
        Ok(match self.workload {
            Workload::ShortestPaths => cell.is_finite(),
            Workload::Widest => cell > 0.0,
            Workload::Reachability => cell == 1.0,
        })
    }

    /// The stored via (interior vertex) of cell `(u, v)`, or `Ok(None)`
    /// when the best path is a direct edge. Errors on untracked stores.
    pub fn via(&self, u: usize, v: usize) -> Result<Option<NodeId>, ApspError> {
        self.check_node("source", u)?;
        self.check_node("target", v)?;
        let blk = self.block(u / self.b, v / self.b)?;
        let Some(vias) = &blk.vias else {
            return Err(store_err(
                "store has no via plane (saved from an untracked solve)".to_string(),
            ));
        };
        let idx = (u % self.b) * blk.side + (v % self.b);
        Ok(match vias[idx] {
            NO_VIA => None,
            k => Some(k),
        })
    }

    /// Reconstructs a witness path `u → v` from the stored via plane,
    /// loading only the blocks the expansion touches. `Ok(None)` when the
    /// store is untracked or `v` is unreachable.
    pub fn path(&self, u: usize, v: usize) -> Result<Option<Vec<NodeId>>, ApspError> {
        self.check_node("source", u)?;
        self.check_node("target", v)?;
        if !self.tracked || !self.reachable(u, v)? {
            return Ok(None);
        }
        match expand_vias_with(u, v, self.n, |a, b| self.via(a, b))? {
            Some(path) => Ok(Some(path)),
            None => Err(store_err(format!(
                "via expansion for ({u}, {v}) does not terminate — the stored via plane is corrupt"
            ))),
        }
    }
}

impl std::fmt::Debug for ClosureStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClosureStore")
            .field("dir", &self.dir)
            .field("workload", &self.workload)
            .field("tracked", &self.tracked)
            .field("n", &self.n)
            .field("b", &self.b)
            .field("q", &self.q)
            .finish()
    }
}

// ---------------------------------------------------------------------------
// Checkpoint finalization
// ---------------------------------------------------------------------------

/// Converts a **finished** checkpoint directory (latest committed round =
/// the final engine round, i.e. the state *is* the closure) into a
/// committed store under `store_dir`, without re-solving. Blocks stream
/// through one at a time: the checkpoint's upper triangle is mirrored
/// into the store's full grid by transposition (valid because the engine
/// solvers are undirected).
///
/// Typical use: a solve ran to completion with `--checkpoint-every 1` but
/// the process died after the last round barrier — the checkpoint holds
/// the whole answer, and this turns it into a queryable store.
pub fn finalize_checkpoint(
    ckpt_dir: impl AsRef<Path>,
    store_dir: impl AsRef<Path>,
) -> Result<(), ApspError> {
    let ckpt_dir = ckpt_dir.as_ref();
    let store_dir = store_dir.as_ref();
    let round = latest_checkpoint_round(ckpt_dir)?.ok_or_else(|| {
        store_err(format!(
            "no committed checkpoint round under '{}'",
            ckpt_dir.display()
        ))
    })?;
    let mkey = checkpoint::meta_key(round);
    let raw = read_ckpt_blob(ckpt_dir, &mkey)?;
    let (kind, body) = unframe(&raw).map_err(|e| frame_err("checkpoint manifest", &mkey, e))?;
    if kind != FRAME_KIND_MANIFEST {
        return Err(frame_err(
            "checkpoint manifest",
            &mkey,
            DecodeError::BadKind(kind),
        ));
    }
    let m = CkptManifest::decode(body).map_err(|e| frame_err("checkpoint manifest", &mkey, e))?;
    if m.round + 1 != m.total_rounds {
        return Err(store_err(format!(
            "checkpoint under '{}' is mid-solve (round {} of {}): resume and finish the \
             solve before finalizing it into a store",
            ckpt_dir.display(),
            m.round + 1,
            m.total_rounds
        )));
    }
    match m.algebra.as_str() {
        "tropical" => finalize_as::<Tropical>(ckpt_dir, store_dir, &m, Workload::ShortestPaths),
        "tropical+argmin" => {
            finalize_as::<TrackedTropical>(ckpt_dir, store_dir, &m, Workload::ShortestPaths)
        }
        "bottleneck" => finalize_as::<Widest>(ckpt_dir, store_dir, &m, Workload::Widest),
        "bottleneck+argmax" => {
            finalize_as::<TrackedWidest>(ckpt_dir, store_dir, &m, Workload::Widest)
        }
        "boolean" => finalize_as::<Reachability>(ckpt_dir, store_dir, &m, Workload::Reachability),
        "boolean+via" => {
            finalize_as::<TrackedReachability>(ckpt_dir, store_dir, &m, Workload::Reachability)
        }
        other => Err(store_err(format!(
            "checkpoint algebra '{other}' has no store finalization"
        ))),
    }
}

/// Latest committed round in a checkpoint directory, by manifest file.
/// Checkpoint keys contain no characters the disk side channel rewrites,
/// so blob file names equal their keys.
fn latest_checkpoint_round(dir: &Path) -> Result<Option<usize>, ApspError> {
    let entries = std::fs::read_dir(dir).map_err(|e| {
        store_err(format!(
            "cannot list checkpoint directory '{}': {e}",
            dir.display()
        ))
    })?;
    let mut latest = None;
    for entry in entries {
        let entry =
            entry.map_err(|e| store_err(format!("cannot list '{}': {e}", dir.display())))?;
        let name = entry.file_name();
        let Some(round) = name
            .to_str()
            .and_then(|n| n.strip_prefix("ckpt-meta-"))
            .and_then(|r| r.parse::<usize>().ok())
        else {
            continue;
        };
        latest = Some(latest.map_or(round, |cur: usize| cur.max(round)));
    }
    Ok(latest)
}

fn read_ckpt_blob(dir: &Path, key: &str) -> Result<Vec<u8>, ApspError> {
    let path = dir.join(key);
    std::fs::read(&path).map_err(|e| {
        store_err(format!(
            "cannot read checkpoint blob '{}': {e}",
            path.display()
        ))
    })
}

/// Value-plane extraction per semiring element type, for checkpoint
/// finalization (monomorphized by algebra).
trait PlaneElem: Copy {
    fn to_plane(vals: &[Self]) -> Plane;
}

impl PlaneElem for f64 {
    fn to_plane(vals: &[Self]) -> Plane {
        Plane::F64(vals.to_vec())
    }
}

impl PlaneElem for bool {
    fn to_plane(vals: &[Self]) -> Plane {
        Plane::Bool(vals.to_vec())
    }
}

/// Via-plane extraction per payload type: tracked algebras carry `u32`
/// vias, untracked algebras carry `()` and store no plane.
trait ViaPayload: Copy {
    fn to_vias(pays: &[Self]) -> Option<Vec<u32>>;
}

impl ViaPayload for () {
    fn to_vias(_: &[Self]) -> Option<Vec<u32>> {
        None
    }
}

impl ViaPayload for u32 {
    fn to_vias(pays: &[Self]) -> Option<Vec<u32>> {
        Some(pays.to_vec())
    }
}

fn finalize_as<A: PathAlgebra>(
    ckpt_dir: &Path,
    store_dir: &Path,
    m: &CkptManifest,
    workload: Workload,
) -> Result<(), ApspError>
where
    apsp_blockmat::algebra::Elem<A>: PlaneElem + Wire,
    A::Payload: ViaPayload + Wire,
{
    let solver = solver_from_tag(&m.solver).ok_or_else(|| {
        store_err(format!(
            "checkpoint names solver '{}', which has no store tag",
            m.solver
        ))
    })?;
    if m.n == 0 || m.b == 0 || m.n > MAX_STORE_DIM || m.b > m.n {
        return Err(store_err(format!(
            "checkpoint manifest declares implausible geometry: n = {}, b = {}",
            m.n, m.b
        )));
    }
    let (n, b) = (m.n as usize, m.b as usize);
    let q = n.div_ceil(b);
    if m.q != q as u64 {
        return Err(store_err(format!(
            "checkpoint manifest geometry mismatch: n = {n}, b = {b} imply q = {q}, \
             manifest declares q = {}",
            m.q
        )));
    }
    let round = m.round as usize;
    let writer = StoreWriter::begin(store_dir)?;
    for bi in 0..q {
        for bj in bi..q {
            let key = checkpoint::block_key(round, bi, bj);
            let raw = read_ckpt_blob(ckpt_dir, &key)?;
            let (kind, mut body) =
                unframe(&raw).map_err(|e| frame_err("checkpoint block", &key, e))?;
            if kind != FRAME_KIND_BLOCK {
                return Err(frame_err(
                    "checkpoint block",
                    &key,
                    DecodeError::BadKind(kind),
                ));
            }
            if body.remaining() < 8 {
                return Err(frame_err(
                    "checkpoint block",
                    &key,
                    DecodeError::Truncated {
                        expected: 8,
                        actual: body.remaining(),
                    },
                ));
            }
            let (got_bi, got_bj) = (body.get_u32_le() as usize, body.get_u32_le() as usize);
            if (got_bi, got_bj) != (bi, bj) {
                return Err(store_err(format!(
                    "checkpoint block '{key}' is keyed ({bi}, {bj}) but stamped \
                     ({got_bi}, {got_bj})"
                )));
            }
            let ab = AlgBlock::<A>::from_wire_bytes(body)
                .map_err(|e| frame_err("checkpoint block", &key, e))?;
            if ab.side() != b {
                return Err(store_err(format!(
                    "checkpoint block '{key}' has side {}, expected b = {b}",
                    ab.side()
                )));
            }
            let values = PlaneElem::to_plane(ab.dist().data());
            let vias = ViaPayload::to_vias(ab.via().data());
            writer.put_block(bi, bj, b, &values, vias.as_deref())?;
            if bi != bj {
                // The engine stores only the upper triangle; the lower
                // block is its transpose (undirected instances only,
                // which is all the engine solvers accept).
                let t = ab.transpose();
                let values = PlaneElem::to_plane(t.dist().data());
                let vias = ViaPayload::to_vias(t.via().data());
                writer.put_block(bj, bi, b, &values, vias.as_deref())?;
            }
        }
    }
    writer.commit(&StoreManifest {
        workload: workload.label().to_string(),
        solver: solver_tag(solver).to_string(),
        tracked: A::TRACKS,
        directed: false,
        n: n as u64,
        b: b as u64,
        q: q as u64,
        block_count: (q * q) as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_roundtrips() {
        let m = StoreManifest {
            workload: "shortest-paths".into(),
            solver: "cb".into(),
            tracked: true,
            directed: false,
            n: 129,
            b: 64,
            q: 3,
            block_count: 9,
        };
        let decoded = StoreManifest::decode(&m.encode()).unwrap();
        assert_eq!(decoded, m);
    }

    #[test]
    fn truncated_manifest_is_typed() {
        let m = StoreManifest {
            workload: "widest-paths".into(),
            solver: "rs".into(),
            tracked: false,
            directed: false,
            n: 64,
            b: 16,
            q: 4,
            block_count: 16,
        };
        let enc = m.encode();
        for cut in [0, 3, 7, enc.len() - 1] {
            assert!(matches!(
                StoreManifest::decode(&enc[..cut]),
                Err(DecodeError::Truncated { .. })
            ));
        }
    }

    #[test]
    fn solver_tags_roundtrip() {
        for id in SolverId::ALL {
            assert_eq!(solver_from_tag(solver_tag(id)), Some(id));
        }
        assert_eq!(solver_from_tag("warp-drive"), None);
    }

    #[test]
    fn workload_labels_roundtrip() {
        for w in [
            Workload::ShortestPaths,
            Workload::Widest,
            Workload::Reachability,
        ] {
            assert_eq!(workload_from_label(w.label()), Some(w));
        }
        assert_eq!(workload_from_label("chromatic"), None);
    }

    #[test]
    fn open_missing_dir_is_typed() {
        let err = ClosureStore::open("/nonexistent/apsp-store").unwrap_err();
        assert!(matches!(err, ApspError::Store(_)));
    }
}
