//! The generic solver engine: the paper's four Spark algorithms written
//! **once**, over any [`PathAlgebra`].
//!
//! Every solver front-end in this crate (`BlockedCollectBroadcast`,
//! `BlockedInMemory`, `FloydWarshall2D`, `RepeatedSquaring`) is a thin
//! instantiation of the skeletons here:
//!
//! * plain APSP = [`Tropical`](apsp_blockmat::Tropical) — payload-free
//!   records whose updates hit the packed `f64` kernel engine, bit-exact
//!   with the dedicated stack this module replaced;
//! * `SolverConfig::with_paths` = [`TrackedTropical`] — the same
//!   skeletons with a `u32` argmin payload riding on each cell (what used
//!   to be the four hand-cloned solvers in `tracked.rs`);
//! * bottleneck/widest paths = [`apsp_blockmat::Widest`] — the same
//!   skeletons over the packed *(max, min)* kernel engine (the 4×8
//!   register-blocked twin of the tropical fast path);
//! * boolean transitive closure = [`apsp_blockmat::Reachability`] — the
//!   same skeletons over the bitset engine, which packs 64 booleans per
//!   `u64` word at the block boundary. Both are exposed through
//!   [`crate::algebra`].
//!
//! Three properties make the generic threading cheap:
//!
//! 1. **Operands stay plain.** A payload cell records only the winning
//!    global `k`, so the staged diagonal/column copies (side channel, copy
//!    shuffles, broadcasts) remain untracked element blocks — no new
//!    dissemination traffic beyond the payload plane riding on each
//!    stored record (zero bytes for `()` payloads).
//! 2. **Transposition is free.** On undirected instances an interior
//!    vertex of a shortest `i → j` path is interior to the reversed path,
//!    so the upper-triangle storage (paper §4) mirrors algebra blocks by
//!    plain transposition, exactly like distances.
//! 3. **Strict-improvement updates compose.** Every relaxation either
//!    strictly improves a cell (and re-records its payload) or leaves it
//!    alone, so any interleaving of phases/sweeps keeps each cell's
//!    `(element, payload)` pair consistent; at convergence
//!    `D(i,k) ⊗ D(k,j) = D(i,j)` holds for every recorded via, which is
//!    what path reconstruction expands against.

use crate::blocks::BlockKey;
use crate::building_blocks::{
    copy_col, copy_diag, extract_col_parts, in_column, on_diagonal, unpack_and_update, AlgPiece,
};
use crate::checkpoint::Checkpointer;
use crate::solver::{ApspError, SolverConfig};
use apsp_blockmat::algebra::Elem;
use apsp_blockmat::{
    AlgBlock, Block, BoolSemiring, BottleneckF64, ElemBlock, Offsets, PathAlgebra, Semiring,
    TrackedTropical,
};
use sparklet::{
    EstimateSize, Partitioner, Rdd, SideChannel, SparkContext, SparkError, SparkResult,
};
use std::sync::Arc;

/// One RDD record of a generic solve: a keyed algebra block.
pub(crate) type AlgRecord<A> = (BlockKey, AlgBlock<A>);

/// Dense collection result: row-major elements plus payloads.
pub(crate) type DenseParts<A> = (Vec<Elem<A>>, Vec<<A as PathAlgebra>::Payload>);

/// An element block that can be staged in (and fetched from) the shared
/// side channel — the dissemination path of the impure solvers.
///
/// The tropical `f64` block keeps using the block-typed API (which the
/// disk backend serializes to real files, the paper's `tofile()`); other
/// element types ride the generic typed-blob store.
pub trait Stageable: Sized + Send + Sync + 'static {
    /// Writes the block under `key`; fails when the backing store does
    /// (e.g. an unwritable disk directory).
    fn stage(ch: &SideChannel, key: String, blk: Self) -> SparkResult<()>;
    /// Fetches the block under `key`.
    fn fetch(ch: &SideChannel, key: &str) -> SparkResult<Arc<Self>>;
}

impl Stageable for Block {
    fn stage(ch: &SideChannel, key: String, blk: Self) -> SparkResult<()> {
        ch.put_block(key, blk)
    }
    fn fetch(ch: &SideChannel, key: &str) -> SparkResult<Arc<Self>> {
        ch.get_block_arc(key)
    }
}

impl Stageable for ElemBlock<BottleneckF64> {
    fn stage(ch: &SideChannel, key: String, blk: Self) -> SparkResult<()> {
        ch.put(key, blk);
        Ok(())
    }
    fn fetch(ch: &SideChannel, key: &str) -> SparkResult<Arc<Self>> {
        ch.get_arc(key)
    }
}

impl Stageable for ElemBlock<BoolSemiring> {
    fn stage(ch: &SideChannel, key: String, blk: Self) -> SparkResult<()> {
        ch.put(key, blk);
        Ok(())
    }
    fn fetch(ch: &SideChannel, key: &str) -> SparkResult<Arc<Self>> {
        ch.get_arc(key)
    }
}

/// Outcome of a generic solver loop: the closed distributed blocks plus
/// geometry. Metrics and wall-clock are accounted by the calling
/// front-end so each keeps its historical measurement window.
pub(crate) struct AlgRun<A: PathAlgebra> {
    pub n: usize,
    pub b: usize,
    pub q: usize,
    pub rdd: Rdd<AlgRecord<A>>,
    pub iterations: u64,
}

impl<A: PathAlgebra> AlgRun<A> {
    /// Rebuilds the dense element matrix *and* the dense payload matrix
    /// from the distributed upper triangle, mirroring across the diagonal
    /// (valid on the symmetric instances the upper-triangle storage
    /// assumes) and trimming padding.
    pub fn collect_dense(&self) -> SparkResult<DenseParts<A>> {
        let records = self.rdd.collect()?;
        let (n, b) = (self.n, self.b);
        let mut vals = vec![A::Semi::zero(); n * n];
        let mut pays = vec![A::empty_payload(); n * n];
        for ((bi, bj), ab) in records {
            for i in 0..b {
                let gi = bi * b + i;
                if gi >= n {
                    continue;
                }
                for j in 0..b {
                    let gj = bj * b + j;
                    if gj < n {
                        vals[gi * n + gj] = ab.dist().get(i, j);
                        let p = ab.via().get(i, j);
                        pays[gi * n + gj] = p;
                        pays[gj * n + gi] = p; // undirected mirror
                        if bi != bj {
                            vals[gj * n + gi] = ab.dist().get(i, j);
                        }
                    }
                }
            }
        }
        Ok((vals, pays))
    }
}

/// Shared prologue: geometry, partitioner, and the blocked decomposition
/// of a symmetric element accessor into upper-triangular records.
fn begin<A: PathAlgebra>(
    ctx: &SparkContext,
    n: usize,
    get: &dyn Fn(usize, usize) -> Elem<A>,
    cfg: &SolverConfig,
) -> (
    usize,
    usize,
    Arc<dyn Partitioner<BlockKey>>,
    Rdd<AlgRecord<A>>,
) {
    let b = cfg.block_size;
    let q = n.div_ceil(b);
    let partitioner = cfg.partitioner.build(q, cfg.partitions_for(ctx));
    let mut records = Vec::with_capacity(q * (q + 1) / 2);
    for bi in 0..q {
        for bj in bi..q {
            let dist = ElemBlock::from_fn(b, |i, j| {
                let (gi, gj) = (bi * b + i, bj * b + j);
                if gi < n && gj < n {
                    get(gi, gj)
                } else if gi == gj {
                    A::Semi::one()
                } else {
                    A::Semi::zero()
                }
            });
            records.push(((bi, bj), AlgBlock::<A>::from_dist(dist)));
        }
    }
    let rdd = ctx.parallelize_by(records, partitioner.clone());
    (b, q, partitioner, rdd)
}

// ---------------------------------------------------------------------------
// Blocked Collect/Broadcast (Algorithm 4)
// ---------------------------------------------------------------------------

fn cb_diag_key(iter: usize) -> String {
    format!("cb:{iter}:diag")
}

fn cb_col_key(iter: usize, t: usize) -> String {
    format!("cb:{iter}:col:{t}")
}

/// Pre-transposed copy of the staged column block (`C_Tᵀ = A_iT`), staged
/// once so Phase 3 targets don't each re-transpose their Right operand.
fn cb_col_t_key(iter: usize, t: usize) -> String {
    format!("cb:{iter}:colT:{t}")
}

/// Algorithm 4 over any path algebra: Phase-1/2 results travel through the
/// **driver and shared persistent storage** as plain element blocks;
/// payloads stay on the stored records.
pub(crate) fn solve_cb<A: PathAlgebra>(
    ctx: &SparkContext,
    n: usize,
    get: &dyn Fn(usize, usize) -> Elem<A>,
    cfg: &SolverConfig,
) -> Result<AlgRun<A>, ApspError>
where
    ElemBlock<A::Semi>: Stageable,
{
    let (b, q, partitioner, initial) = begin::<A>(ctx, n, get, cfg);
    let (ckpt, resumed) = Checkpointer::<A>::prepare(ctx, cfg, "cb", n, b, q, q)?;
    let (first_round, mut a): (usize, Rdd<AlgRecord<A>>) = match resumed {
        Some((round, records)) => (
            round + 1,
            ctx.parallelize_by(records, partitioner.clone()).persist(),
        ),
        None => (0, initial.persist()),
    };
    let kern = cfg.kernel;

    for i in first_round..q {
        // Phase 1: close the diagonal block, stage its elements (lines 2–3).
        let diag_rdd = a
            .filter(move |(key, _)| on_diagonal(key, i))
            .map(move |(key, mut ab)| {
                ab.floyd_warshall_in_place(i * b);
                (key, ab)
            })
            .persist();
        let diag_records = diag_rdd.collect()?;
        let diag_block = diag_records
            .into_iter()
            .next()
            .ok_or_else(|| {
                ApspError::Engine(SparkError::User(format!("missing diagonal block {i}")))
            })?
            .1;
        Stageable::stage(
            ctx.side_channel(),
            cb_diag_key(i),
            diag_block.dist().clone(),
        )?;

        // Phase 2: update the pivot cross against the staged diagonal
        // (line 5), collect and stage both orientations (lines 6–7).
        let side = ctx.clone();
        let rowcol = a
            .filter(move |(key, _)| in_column(key, i) && !on_diagonal(key, i))
            .try_map(move |(key, mut ab)| {
                let d =
                    <ElemBlock<A::Semi> as Stageable>::fetch(side.side_channel(), &cb_diag_key(i))?;
                if key.1 == i {
                    // Stored A_Ti (pivot columns on the right).
                    ab.min_plus_assign(kern, &d, Offsets::blocks(b, i, key.0, key.1));
                } else {
                    // Stored A_iY (pivot rows on the left).
                    ab.min_plus_left_assign(kern, &d, Offsets::blocks(b, i, key.0, key.1));
                }
                Ok((key, ab))
            })
            .persist();
        for (key, ab) in rowcol.collect()? {
            // Stage in canonical orientation C_T = A_Ti, plus the
            // transpose (A_iT) so Phase 3 reads both orientations without
            // per-target transposition; payloads stay on the stored
            // records (the collected copy is ours to consume).
            let (dist, _) = ab.into_parts();
            let transposed = dist.transpose();
            let (t, canonical_block, transposed_block) = if key.1 == i {
                (key.0, dist, transposed)
            } else {
                (key.1, transposed, dist)
            };
            Stageable::stage(ctx.side_channel(), cb_col_t_key(i, t), transposed_block)?;
            Stageable::stage(ctx.side_channel(), cb_col_key(i, t), canonical_block)?;
        }

        // Phase 3: fold the staged column products into every remaining
        // block (line 9): A_XY = A_XY ⊕ (A_Xi ⊗ A_iY).
        let side = ctx.clone();
        let offcol =
            a.filter(move |(key, _)| !in_column(key, i))
                .try_map(move |((x, y), mut ab)| {
                    let ch = side.side_channel();
                    let c_x = <ElemBlock<A::Semi> as Stageable>::fetch(ch, &cb_col_key(i, x))?;
                    let c_y_t = <ElemBlock<A::Semi> as Stageable>::fetch(ch, &cb_col_t_key(i, y))?;
                    ab.min_plus_into_self(kern, &c_x, &c_y_t, Offsets::blocks(b, i, x, y));
                    Ok(((x, y), ab))
                });

        // Reassemble A (lines 11–12).
        let next = diag_rdd
            .union_all(&[rowcol.clone(), offcol])
            .partition_by(partitioner.clone())
            .persist();
        // Materialize before the staged blocks are dropped: the
        // side-channel data is outside the lineage (impurity!).
        next.count()?;
        ctx.side_channel().remove(&cb_diag_key(i));
        for t in 0..q {
            ctx.side_channel().remove(&cb_col_key(i, t));
            ctx.side_channel().remove(&cb_col_t_key(i, t));
        }
        diag_rdd.unpersist();
        rowcol.unpersist();
        a.unpersist();
        a = next;
        ckpt.after_round(i, &a)?;
    }

    Ok(AlgRun {
        n,
        b,
        q,
        rdd: a,
        iterations: q as u64,
    })
}

// ---------------------------------------------------------------------------
// Blocked In-Memory (Algorithm 3)
// ---------------------------------------------------------------------------

/// Algorithm 3 over any path algebra: diagonal and column copies replicate
/// through the `CopyDiag`/`CopyCol` shuffles (as element blocks); the
/// stored records fold them in with the algebra's kernels.
pub(crate) fn solve_im<A: PathAlgebra>(
    ctx: &SparkContext,
    n: usize,
    get: &dyn Fn(usize, usize) -> Elem<A>,
    cfg: &SolverConfig,
) -> Result<AlgRun<A>, ApspError> {
    let (b, q, partitioner, initial) = begin::<A>(ctx, n, get, cfg);
    let (ckpt, resumed) = Checkpointer::<A>::prepare(ctx, cfg, "im", n, b, q, q)?;
    let (first_round, mut a): (usize, Rdd<AlgRecord<A>>) = match resumed {
        Some((round, records)) => (
            round + 1,
            ctx.parallelize_by(records, partitioner.clone()).persist(),
        ),
        None => (0, initial.persist()),
    };
    let kern = cfg.kernel;

    for i in first_round..q {
        // Phase 1: diagonal closure + CopyDiag of its elements (lines 2–4).
        let diag_rdd = a
            .filter(move |(key, _)| on_diagonal(key, i))
            .map(move |(key, mut ab)| {
                ab.floyd_warshall_in_place(i * b);
                (key, ab)
            })
            .persist();
        let diag_copies = diag_rdd.flat_map(move |(_, d)| copy_diag::<A>(i, d.dist(), q));

        // Phase 2: pair cross blocks with the diagonal copies via
        // combineByKey (ListAppend) and resolve (ListUnpack + MatMin),
        // lines 6–9.
        let cross_stored = a
            .filter(move |(key, _)| in_column(key, i) && !on_diagonal(key, i))
            .map(|(key, ab)| (key, AlgPiece::Stored(ab)));
        let phase2: Rdd<AlgRecord<A>> = cross_stored
            .union(&diag_copies)
            .combine_by_key(
                partitioner.clone(),
                |p| vec![p],
                |mut list, p| {
                    list.push(p);
                    list
                },
                |mut a, mut b| {
                    a.append(&mut b);
                    a
                },
            )
            .try_map(move |(key, pieces)| Ok((key, unpack_and_update(kern, pieces, i, b, key)?)))
            .persist();

        // CopyCol: replicate the updated cross elements to Phase-3 targets
        // in canonical orientation C_T = A_Ti (lines 9–10).
        let copies = phase2.flat_map(move |(key, ab)| {
            let (t, canonical_block) = if key.1 == i {
                (key.0, ab.dist().clone())
            } else {
                (key.1, ab.dist().transpose())
            };
            copy_col::<A>(t, i, &canonical_block, q)
        });

        // Phase 3: pair remaining blocks with their two cross copies and
        // update (lines 12–14).
        let off_stored = a
            .filter(move |(key, _)| !in_column(key, i))
            .map(|(key, ab)| (key, AlgPiece::Stored(ab)));
        let phase3: Rdd<AlgRecord<A>> = off_stored
            .union(&copies)
            .combine_by_key(
                partitioner.clone(),
                |p| vec![p],
                |mut list, p| {
                    list.push(p);
                    list
                },
                |mut a, mut b| {
                    a.append(&mut b);
                    a
                },
            )
            .try_map(move |(key, pieces)| Ok((key, unpack_and_update(kern, pieces, i, b, key)?)));

        // Reassemble and repartition (line 15) — mandatory, or the union's
        // partition count compounds every iteration.
        let next = diag_rdd
            .union_all(&[phase2.clone(), phase3])
            .partition_by(partitioner.clone())
            .persist();
        next.count()?;
        diag_rdd.unpersist();
        phase2.unpersist();
        a.unpersist();
        a = next;
        ckpt.after_round(i, &a)?;
    }

    Ok(AlgRun {
        n,
        b,
        q,
        rdd: a,
        iterations: q as u64,
    })
}

// ---------------------------------------------------------------------------
// 2D Floyd-Warshall (Algorithm 2)
// ---------------------------------------------------------------------------

/// Algorithm 2 over any path algebra: the broadcast pivot column stays a
/// plain element vector; every block applies the rank-1 update, recording
/// the (single, global) pivot as the payload.
pub(crate) fn solve_fw2d<A: PathAlgebra>(
    ctx: &SparkContext,
    n: usize,
    get: &dyn Fn(usize, usize) -> Elem<A>,
    cfg: &SolverConfig,
) -> Result<AlgRun<A>, ApspError>
where
    Elem<A>: EstimateSize,
{
    let (b, q, partitioner, initial) = begin::<A>(ctx, n, get, cfg);
    let (ckpt, resumed) = Checkpointer::<A>::prepare(ctx, cfg, "fw2d", n, b, q, n)?;
    let (first_round, mut a): (usize, Rdd<AlgRecord<A>>) = match resumed {
        Some((round, records)) => (
            round + 1,
            ctx.parallelize_by(records, partitioner).persist(),
        ),
        None => (0, initial.persist()),
    };
    let mut prev: Option<Rdd<AlgRecord<A>>> = None;

    for k in first_round..n {
        let pivot_block = k / b;
        let k_local = k % b;

        // Extract and collect the pivot column (lines 2–6 of Alg. 2).
        let segments = a
            .filter(move |(key, _)| in_column(key, pivot_block))
            .flat_map(move |(key, ab)| extract_col_parts(&key, ab.dist(), pivot_block, k_local))
            .collect()?;
        let mut column = vec![A::Semi::zero(); q * b];
        for (row_block, values) in segments {
            column[row_block * b..row_block * b + b].copy_from_slice(&values);
        }
        // Broadcast to the executors (line 8).
        let bcast = ctx.broadcast(column);

        // Rank-1 update on every block (line 10), exploiting symmetry:
        // column[x] = d(x, k) = d(k, x).
        let col = bcast.clone();
        let next = a
            .map(move |((i, j), mut ab)| {
                let col_i = &col.value()[i * b..i * b + b];
                let col_j = &col.value()[j * b..j * b + b];
                ab.fw_update_outer(col_i, col_j, k);
                ((i, j), ab)
            })
            .persist();

        // `a` was fully materialized by the column job; retire the
        // generation before it to keep memory at ~two generations.
        if let Some(old) = prev.take() {
            old.unpersist();
        }
        prev = Some(a);
        a = next;
        ckpt.after_round(k, &a)?;
    }

    Ok(AlgRun {
        n,
        b,
        q,
        rdd: a,
        iterations: n as u64,
    })
}

// ---------------------------------------------------------------------------
// Repeated squaring (Algorithm 1)
// ---------------------------------------------------------------------------

fn rs_col_key(step: usize, j: usize, k: usize) -> String {
    format!("rs:{step}:{j}:{k}")
}

/// Algorithm 1 over any path algebra: column sweeps stage element blocks
/// in shared storage. Each sweep target `(X, J)` receives one **seeded**
/// contribution (its own stored record folded with `self ⊕ (self ⊗ C_J)`)
/// plus unseeded partial products from the other records; the
/// `reduceByKey` merge is the algebra's join, whose strict-improvement
/// rule keeps the seeded estimate on ties — the seeding contract the
/// tracking kernels rely on (see `apsp_blockmat::parent`).
pub(crate) fn solve_rs<A: PathAlgebra>(
    ctx: &SparkContext,
    n: usize,
    get: &dyn Fn(usize, usize) -> Elem<A>,
    cfg: &SolverConfig,
) -> Result<AlgRun<A>, ApspError>
where
    ElemBlock<A::Semi>: Stageable,
{
    let (b, q, partitioner, initial) = begin::<A>(ctx, n, get, cfg);
    let kern = cfg.kernel;

    // ⌈log₂ n⌉ squarings close paths of any hop count (diagonal identity
    // makes A^(2^s) monotone and dominated by the closure).
    let squarings = (n.max(2) as f64).log2().ceil() as usize;
    let (ckpt, resumed) = Checkpointer::<A>::prepare(ctx, cfg, "rs", n, b, q, squarings)?;
    let (first_step, mut a): (usize, Rdd<AlgRecord<A>>) = match resumed {
        Some((step, records)) => (
            step + 1,
            ctx.parallelize_by(records, partitioner.clone()).persist(),
        ),
        None => (0, initial.persist()),
    };
    let mut sweeps_done = (first_step * q) as u64;

    for step in first_step..squarings {
        let mut sweeps: Vec<Rdd<AlgRecord<A>>> = Vec::with_capacity(q);
        for j in 0..q {
            // Stage column J's element blocks in canonical orientation
            // C_K = A_KJ (rows K, cols J) — lines 3–4.
            for ((x, y), ab) in a.filter(move |(key, _)| in_column(key, j)).collect()? {
                if y == j {
                    Stageable::stage(
                        ctx.side_channel(),
                        rs_col_key(step, j, x),
                        ab.dist().clone(),
                    )?;
                }
                if x == j && x != y {
                    Stageable::stage(
                        ctx.side_channel(),
                        rs_col_key(step, j, y),
                        ab.dist().transpose(),
                    )?;
                }
            }

            // Products against the staged column + reduceByKey(join) —
            // line 5. A stored record (I, K) contributes A_IK ⊗ C_K toward
            // D_IJ and (via its transpose) A_KI ⊗ C_I toward D_KJ; only
            // upper-triangular targets are emitted, since sweep J owns
            // exactly the keys (X, J), X ≤ J.
            let side = ctx.clone();
            let contributions = a.try_flat_map(move |((rec_i, rec_k), ab)| {
                let mut out: Vec<AlgRecord<A>> = Vec::with_capacity(2);
                if rec_i <= j {
                    let c_k = <ElemBlock<A::Semi> as Stageable>::fetch(
                        side.side_channel(),
                        &rs_col_key(step, j, rec_k),
                    )?;
                    if rec_k == j {
                        // The target's own record: the seeded contribution.
                        let mut seeded = ab.clone();
                        seeded.min_plus_assign(kern, &c_k, Offsets::blocks(b, rec_k, rec_i, j));
                        out.push(((rec_i, j), seeded));
                    } else {
                        out.push((
                            (rec_i, j),
                            AlgBlock::min_plus_product(
                                kern,
                                ab.dist(),
                                &c_k,
                                Offsets::blocks(b, rec_k, rec_i, j),
                            ),
                        ));
                    }
                }
                if rec_k <= j && rec_i != rec_k {
                    let c_i = <ElemBlock<A::Semi> as Stageable>::fetch(
                        side.side_channel(),
                        &rs_col_key(step, j, rec_i),
                    )?;
                    out.push((
                        (rec_k, j),
                        AlgBlock::min_plus_product(
                            kern,
                            &ab.dist().transpose(),
                            &c_i,
                            Offsets::blocks(b, rec_i, rec_k, j),
                        ),
                    ));
                }
                Ok(out)
            });
            let t_j = contributions.reduce_by_key(partitioner.clone(), |mut x, y| {
                x.mat_min_assign(&y);
                x
            });
            sweeps.push(t_j);
            sweeps_done += 1;
        }

        // Line 6: union the sweeps into the next A.
        let next = sweeps[0].union_all(&sweeps[1..]).persist();
        // Materialize *before* dropping the staged columns — the products
        // read them lazily (impurity in action).
        next.count()?;
        for j in 0..q {
            for k in 0..q {
                ctx.side_channel().remove(&rs_col_key(step, j, k));
            }
        }
        a.unpersist();
        a = next;
        ckpt.after_round(step, &a)?;
    }

    Ok(AlgRun {
        n,
        b,
        q,
        rdd: a,
        iterations: sweeps_done,
    })
}

// ---------------------------------------------------------------------------
// Tracked front-end plumbing
// ---------------------------------------------------------------------------

/// Runs a generic solver loop under the [`TrackedTropical`] algebra and
/// assembles the `ApspResult` with its parent matrix — the shared
/// `with_paths` epilogue of the four solver front-ends.
pub(crate) fn solve_tracked(
    ctx: &SparkContext,
    adjacency: &apsp_blockmat::Matrix,
    cfg: &SolverConfig,
    run: impl FnOnce(
        &SparkContext,
        usize,
        &dyn Fn(usize, usize) -> f64,
        &SolverConfig,
    ) -> Result<AlgRun<TrackedTropical>, ApspError>,
) -> Result<crate::solver::ApspResult, ApspError> {
    use crate::solver::{validate_adjacency, ApspResult};
    let n = adjacency.order();
    cfg.check(n)?;
    if cfg.validate_input {
        validate_adjacency(adjacency)?;
    }
    let start = std::time::Instant::now();
    let metrics_before = ctx.metrics();
    let out = run(ctx, n, &|i, j| adjacency.get(i, j), cfg)?;
    let (vals, vias) = out.collect_dense()?;
    let metrics = ctx.metrics().delta(&metrics_before);
    Ok(ApspResult::new(
        apsp_blockmat::Matrix::from_vec(n, vals),
        metrics,
        start.elapsed(),
        out.iterations,
    )
    .with_parents(apsp_graph::paths::ParentMatrix::from_vias(n, vias)))
}

#[cfg(test)]
mod tests {
    use crate::solver::{ApspSolver, SolverConfig};
    use crate::{BlockedCollectBroadcast, BlockedInMemory, FloydWarshall2D, RepeatedSquaring};
    use apsp_graph::{dijkstra, generators};
    use sparklet::{SparkConfig, SparkContext};

    fn ctx() -> SparkContext {
        SparkContext::new(SparkConfig::with_cores(4))
    }

    fn check_solver(solver: &dyn ApspSolver, n: usize, b: usize, seed: u64) {
        let g = generators::erdos_renyi_paper(n, 0.1, seed);
        let adj = g.to_dense();
        let res = solver
            .solve(&ctx(), &adj, &SolverConfig::new(b).with_paths())
            .unwrap_or_else(|e| panic!("{} failed: {e}", solver.name()));
        assert!(
            res.parents().is_some(),
            "{} returned no parents",
            solver.name()
        );
        let oracle = dijkstra::apsp_dijkstra(&g);
        assert!(
            res.distances().approx_eq(&oracle, 1e-9).is_ok(),
            "{}: tracked distances diverge from Dijkstra",
            solver.name()
        );
        let dap = res.into_paths().unwrap();
        dap.validate_against(&adj, 1e-9)
            .unwrap_or_else(|e| panic!("{}: {e}", solver.name()));
    }

    #[test]
    fn tracked_cb_round_trips() {
        check_solver(&BlockedCollectBroadcast, 60, 16, 7);
        check_solver(&BlockedCollectBroadcast, 45, 16, 15); // uneven tail
    }

    #[test]
    fn tracked_im_round_trips() {
        check_solver(&BlockedInMemory, 60, 16, 8);
        check_solver(&BlockedInMemory, 30, 15, 31);
    }

    #[test]
    fn tracked_fw2d_round_trips() {
        check_solver(&FloydWarshall2D, 37, 8, 3);
    }

    #[test]
    fn tracked_rs_round_trips() {
        check_solver(&RepeatedSquaring, 48, 12, 44);
        check_solver(&RepeatedSquaring, 29, 9, 5);
    }

    #[test]
    fn tracked_matches_untracked_distances_exactly_per_solver() {
        // Tracking must be a pure observer: the distance matrix of a
        // tracked solve is bit-identical to the untracked solve for the
        // blocked solvers (same relaxation order, strict-< vs min is
        // value-equivalent).
        let g = generators::erdos_renyi_paper(40, 0.1, 12);
        let adj = g.to_dense();
        for solver in [
            &BlockedCollectBroadcast as &dyn ApspSolver,
            &BlockedInMemory,
            &FloydWarshall2D,
        ] {
            let plain = solver.solve(&ctx(), &adj, &SolverConfig::new(12)).unwrap();
            let tracked = solver
                .solve(&ctx(), &adj, &SolverConfig::new(12).with_paths())
                .unwrap();
            assert!(
                tracked
                    .distances()
                    .approx_eq(plain.distances(), 0.0)
                    .is_ok(),
                "{}: tracked distances not bit-identical",
                solver.name()
            );
        }
    }

    #[test]
    fn long_path_graph_reconstructs_every_pair() {
        // Worst case for via recursion depth: all-pairs paths on a line.
        let g = generators::path(40);
        let adj = g.to_dense();
        let res = BlockedCollectBroadcast
            .solve(&ctx(), &adj, &SolverConfig::new(8).with_paths())
            .unwrap();
        let dap = res.into_paths().unwrap();
        for i in 0..40 {
            for j in 0..40 {
                let p = dap.reconstruct(i, j).unwrap();
                assert_eq!(p.len(), i.abs_diff(j) + 1, "({i},{j})");
            }
        }
    }

    #[test]
    fn disconnected_pairs_reconstruct_to_none() {
        let mut g = apsp_graph::Graph::new(12);
        g.add_edge(0, 1, 3.0);
        g.add_edge(5, 7, 1.0);
        let res = BlockedInMemory
            .solve(&ctx(), &g.to_dense(), &SolverConfig::new(4).with_paths())
            .unwrap();
        let dap = res.into_paths().unwrap();
        assert_eq!(dap.reconstruct(0, 5), None);
        assert_eq!(dap.reconstruct(0, 1), Some(vec![0, 1]));
        assert_eq!(dap.reconstruct(7, 5), Some(vec![7, 5]));
    }

    #[test]
    fn non_tracking_solvers_reject_with_paths() {
        use crate::solver::ApspError;
        let g = generators::cycle(8);
        let cfg = SolverConfig::new(4).with_paths();
        for solver in [
            &crate::CartesianSquaring as &dyn ApspSolver,
            &crate::DistributedJohnson,
        ] {
            let err = solver.solve(&ctx(), &g.to_dense(), &cfg).unwrap_err();
            assert!(
                matches!(err, ApspError::InvalidConfig(_)),
                "{} must reject with_paths explicitly",
                solver.name()
            );
        }
    }

    #[test]
    fn untracked_solve_has_no_parents() {
        let g = generators::cycle(10);
        let res = BlockedCollectBroadcast
            .solve(&ctx(), &g.to_dense(), &SolverConfig::new(4))
            .unwrap();
        assert!(res.parents().is_none());
        assert!(res.into_paths().is_none());
    }
}
