//! Crate-isolation smoke tests for `cargo test -p apsp-core`: one Spark
//! solver and one MPI baseline against a hand-checkable input.

use apsp_core::{ApspSolver, BlockedCollectBroadcast, MpiDcApsp, SolverConfig};
use apsp_graph::generators;
use sparklet::{SparkConfig, SparkContext};

#[test]
fn cb_solves_a_path_graph_exactly() {
    let g = generators::path(20);
    let ctx = SparkContext::new(SparkConfig::with_cores(2));
    let res = BlockedCollectBroadcast
        .solve(&ctx, &g.to_dense(), &SolverConfig::new(6))
        .unwrap();
    let d = res.distances();
    assert_eq!(d.get(0, 19), 19.0);
    assert_eq!(d.get(7, 3), 4.0);
}

#[test]
fn mpi_dc_matches_the_sequential_oracle() {
    let g = generators::erdos_renyi_paper(48, 0.1, 5);
    let adj = g.to_dense();
    let oracle = apsp_graph::floyd_warshall(&g);
    let res = MpiDcApsp::new(3).solve_matrix(&adj).unwrap();
    assert!(res.distances.approx_eq(&oracle, 1e-9).is_ok());
}
