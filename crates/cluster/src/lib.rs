//! # apsp-cluster — testbed model, kernel calibration, and projections
//!
//! The paper's headline numbers (Table 2 "Projected", Table 3, Figure 5)
//! are extrapolations: measure a single iteration at scale, multiply by
//! the iteration count, and check feasibility constraints (local SSD
//! staging capacity, §5.2). This crate reproduces that methodology without
//! the 1,024-core cluster:
//!
//! * [`ClusterSpec`] — the paper's testbed (32 nodes × 32-core Skylake,
//!   GbE, local SSD staging, shared GPFS), parameterized so other clusters
//!   can be modeled;
//! * [`KernelRates`] — seconds-per-operation of the three sequential
//!   kernels (in-block Floyd-Warshall, min-plus product, rank-1 update),
//!   either measured on the host ([`KernelRates::measure`]) or anchored to
//!   the paper's published points ([`KernelRates::paper`], e.g.
//!   `T1(n=256) = 0.022 s`);
//! * [`project`] — per-solver analytic cost models assembling iteration
//!   counts, parallel compute time (with task-granularity and
//!   partitioner-skew effects), shuffle/broadcast/side-channel volumes,
//!   and engine overheads into projected totals plus feasibility verdicts.
//!
//! ## Fidelity contract
//!
//! Compute terms are first-principles (`ops × rate / cores`, with
//! granularity and skew multipliers); communication terms derive from the
//! solvers' structural data volumes; two constants are *anchored* to the
//! paper's measurements and documented as such ([`SparkOverheads`]).
//! Absolute projections land within a small factor of the paper's numbers;
//! orderings, feasibility cliffs and trends (who wins, where IM runs out
//! of storage, how block size trades iteration count against iteration
//! cost) are preserved — see `EXPERIMENTS.md` for the side-by-side.

#![warn(missing_docs)]

mod model;
mod rates;
mod skew;
mod spec;

pub use model::{
    project, CostBreakdown, Feasibility, PartitionerKind, Projection, SolverKind, SparkOverheads,
    Workload,
};
pub use rates::KernelRates;
pub use skew::{partition_load_histogram, skew_factor};
pub use spec::ClusterSpec;
