//! Cluster hardware description.

use serde::{Deserialize, Serialize};

/// Hardware description of a Spark/MPI cluster, defaulting to the paper's
/// §5 testbed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Number of worker nodes (the driver runs on an additional node).
    pub nodes: usize,
    /// Physical cores per node.
    pub cores_per_node: usize,
    /// RAM per node available to executors, in bytes.
    pub ram_per_node_bytes: u64,
    /// Per-node NIC bandwidth, bytes/second (GbE ≈ 125 MB/s).
    pub nic_bandwidth_bps: f64,
    /// Per-message network latency, seconds.
    pub nic_latency_s: f64,
    /// Local SSD staging capacity per node, bytes (Spark spills land here).
    pub ssd_capacity_bytes: u64,
    /// Local SSD write bandwidth, bytes/second.
    pub ssd_bandwidth_bps: f64,
    /// Aggregate shared-filesystem (GPFS) bandwidth, bytes/second.
    pub shared_fs_bandwidth_bps: f64,
    /// Shared-filesystem operation latency, seconds.
    pub shared_fs_latency_s: f64,
}

impl ClusterSpec {
    /// The paper's testbed: 32 nodes × two 16-core Intel Xeon Gold 6130
    /// (Skylake), 192 GB RAM/node (180 GB to executors), GbE interconnect,
    /// 1 TB local SSD per node, shared GPFS.
    pub fn paper_cluster() -> Self {
        ClusterSpec {
            nodes: 32,
            cores_per_node: 32,
            ram_per_node_bytes: 180 * (1 << 30),
            nic_bandwidth_bps: 125.0e6,
            nic_latency_s: 50.0e-6,
            ssd_capacity_bytes: 1 << 40, // 1 TB
            ssd_bandwidth_bps: 1.0e9,
            shared_fs_bandwidth_bps: 10.0e9,
            shared_fs_latency_s: 1.0e-3,
        }
    }

    /// A cluster with the same per-node hardware as the paper's but
    /// `nodes` worker nodes — used for the weak-scaling sweep, where the
    /// paper runs `p ∈ {64 … 1024}` cores by varying node count.
    pub fn paper_cluster_with_cores(total_cores: usize) -> Self {
        let mut spec = Self::paper_cluster();
        assert!(
            total_cores.is_multiple_of(spec.cores_per_node),
            "core count must be a multiple of {} (whole nodes)",
            spec.cores_per_node
        );
        spec.nodes = total_cores / spec.cores_per_node;
        spec
    }

    /// A single-machine spec for in-process solves: one "node" with
    /// `cores` cores, 4 GiB of executor RAM per core, 64 GiB of local
    /// staging, and loopback-class "network" numbers. This is the default
    /// spec the query planner (`apsp-core::plan`) and
    /// `SolverConfig::auto` route their feasibility checks through when
    /// the caller supplies no cluster description: deterministic by
    /// construction, so plans are reproducible across machines.
    pub fn local(cores: usize) -> Self {
        let cores = cores.max(1);
        ClusterSpec {
            nodes: 1,
            cores_per_node: cores,
            ram_per_node_bytes: cores as u64 * 4 * (1 << 30),
            nic_bandwidth_bps: 12.5e9, // loopback: memory-bandwidth class
            nic_latency_s: 5.0e-6,
            ssd_capacity_bytes: 64 << 30,
            ssd_bandwidth_bps: 2.0e9,
            shared_fs_bandwidth_bps: 2.0e9,
            shared_fs_latency_s: 1.0e-4,
        }
    }

    /// Total executor cores.
    pub fn total_cores(&self) -> usize {
        self.nodes * self.cores_per_node
    }

    /// Aggregate cross-node network bandwidth (all NICs busy), bytes/s.
    pub fn aggregate_net_bandwidth(&self) -> f64 {
        self.nodes as f64 * self.nic_bandwidth_bps
    }

    /// Aggregate local-SSD write bandwidth, bytes/s.
    pub fn aggregate_ssd_bandwidth(&self) -> f64 {
        self.nodes as f64 * self.ssd_bandwidth_bps
    }

    /// Total local staging capacity, bytes.
    pub fn total_ssd_capacity(&self) -> u64 {
        self.nodes as u64 * self.ssd_capacity_bytes
    }

    /// Total executor RAM, bytes.
    pub fn total_ram(&self) -> u64 {
        self.nodes as u64 * self.ram_per_node_bytes
    }

    /// Fraction of uniformly-shuffled data that must cross the network
    /// (records staying on their node are free): `(nodes-1)/nodes`.
    pub fn cross_node_fraction(&self) -> f64 {
        if self.nodes <= 1 {
            0.0
        } else {
            (self.nodes - 1) as f64 / self.nodes as f64
        }
    }
}

impl Default for ClusterSpec {
    fn default() -> Self {
        Self::paper_cluster()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_cluster_totals() {
        let c = ClusterSpec::paper_cluster();
        assert_eq!(c.total_cores(), 1024);
        assert_eq!(c.total_ssd_capacity(), 32 << 40);
        assert!((c.aggregate_net_bandwidth() - 4.0e9).abs() < 1.0);
        assert!(c.total_ram() > 5 * (1u64 << 40)); // ~5.6 TB
    }

    #[test]
    fn local_spec_is_single_node_and_deterministic() {
        let c = ClusterSpec::local(8);
        assert_eq!(c.nodes, 1);
        assert_eq!(c.total_cores(), 8);
        assert_eq!(c.total_ram(), 8 * 4 * (1u64 << 30));
        assert_eq!(c.cross_node_fraction(), 0.0);
        assert_eq!(ClusterSpec::local(8), ClusterSpec::local(8));
        // Degenerate core counts are clamped to a usable machine.
        assert_eq!(ClusterSpec::local(0).total_cores(), 1);
    }

    #[test]
    fn scaled_cluster() {
        let c = ClusterSpec::paper_cluster_with_cores(256);
        assert_eq!(c.nodes, 8);
        assert_eq!(c.total_cores(), 256);
    }

    #[test]
    #[should_panic(expected = "multiple")]
    fn rejects_fractional_nodes() {
        let _ = ClusterSpec::paper_cluster_with_cores(100);
    }

    #[test]
    fn cross_node_fraction_bounds() {
        let mut c = ClusterSpec::paper_cluster();
        assert!((c.cross_node_fraction() - 31.0 / 32.0).abs() < 1e-12);
        c.nodes = 1;
        assert_eq!(c.cross_node_fraction(), 0.0);
    }

    #[test]
    fn default_is_paper_cluster() {
        assert_eq!(ClusterSpec::default(), ClusterSpec::paper_cluster());
    }
}
