//! Per-solver analytic cost models.
//!
//! Each model assembles, from first principles, the per-iteration cost of
//! one solver on a [`ClusterSpec`]:
//!
//! * **compute** — `ops × kernel rate / cores`, with a task-granularity
//!   factor (`⌈tasks/p⌉` rounds — the reason very large blocks hurt) and a
//!   partitioner-skew factor computed from the actual partitioner
//!   implementations ([`crate::skew_factor`]), damped by the
//!   over-decomposition factor `B` (more partitions per core → better
//!   dynamic load balancing, §5.3);
//! * **driver** — collects through the driver NIC (the paper's
//!   `collect`-based broadcasts);
//! * **shuffle** — structural record volumes over the aggregate NIC
//!   bandwidth, with compression and the locality discount earned by the
//!   multi-diagonal placement of copies;
//! * **storage** — GPFS side-channel reads/writes (with per-node caching
//!   of fetched columns) and local-SSD shuffle staging;
//! * **overhead** — per-job constants and driver task-dispatch throughput.
//!
//! Feasibility reproduces the paper's §5.2 storage analysis: Blocked
//! In-Memory's shuffle files are "spilled to the local storage and
//! preserved for fault tolerance", so its staging requirement grows
//! linearly with the iteration count; Collect/Broadcast's staging is
//! bounded by a single iteration.

use crate::rates::KernelRates;
use crate::skew::skew_factor;
use crate::spec::ClusterSpec;
use serde::{Deserialize, Serialize};

/// Which partitioner a Spark solver distributes its blocks with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PartitionerKind {
    /// The paper's multi-diagonal partitioner (balanced by construction).
    MultiDiagonal,
    /// pySpark's default `portable_hash` (skewed on upper-triangular keys).
    PortableHash,
}

impl PartitionerKind {
    /// Short label used in tables ("MD" / "PH", as in the paper).
    pub fn label(self) -> &'static str {
        match self {
            PartitionerKind::MultiDiagonal => "MD",
            PartitionerKind::PortableHash => "PH",
        }
    }
}

/// The six solvers the paper evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SolverKind {
    /// Algorithm 1: repeated squaring with column-block sweeps.
    RepeatedSquaring,
    /// Algorithm 2: 2D-decomposed Floyd-Warshall (pure).
    FloydWarshall2D,
    /// Algorithm 3: blocked in-memory (pure, shuffle-based).
    BlockedInMemory,
    /// Algorithm 4: blocked collect/broadcast (impure, side channel).
    BlockedCollectBroadcast,
    /// Naive MPI 2D Floyd-Warshall (FW-2D-GbE baseline).
    MpiFw2d,
    /// Solomonik-style divide-and-conquer MPI APSP (DC-GbE baseline).
    MpiDc,
}

impl SolverKind {
    /// Table label matching the paper.
    pub fn label(self) -> &'static str {
        match self {
            SolverKind::RepeatedSquaring => "Repeated Squaring",
            SolverKind::FloydWarshall2D => "2D Floyd-Warshall",
            SolverKind::BlockedInMemory => "Blocked-IM",
            SolverKind::BlockedCollectBroadcast => "Blocked-CB",
            SolverKind::MpiFw2d => "FW-2D-GbE",
            SolverKind::MpiDc => "DC-GbE",
        }
    }
}

/// Problem instance + Spark tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    /// Number of graph vertices.
    pub n: usize,
    /// Decomposition block side `b`.
    pub b: usize,
    /// RDD partitions per core (the paper's `B`; Spark guidance 2–4).
    pub partitions_per_core: usize,
    /// Block partitioner (ignored by the MPI baselines).
    pub partitioner: PartitionerKind,
}

impl Workload {
    /// Convenience constructor with `B = 2` and the MD partitioner (the
    /// configuration the paper settles on).
    pub fn paper_default(n: usize, b: usize) -> Self {
        Workload {
            n,
            b,
            partitions_per_core: 2,
            partitioner: PartitionerKind::MultiDiagonal,
        }
    }

    /// Block-grid order `q = ⌈n/b⌉`.
    pub fn q(&self) -> usize {
        self.n.div_ceil(self.b)
    }
}

/// Engine-level constants. Compute and volume terms are first-principles;
/// the fields below are the documented calibration points.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SparkOverheads {
    /// Fixed driver-side cost per job (stage setup, closure serialization,
    /// result handling).
    pub per_job_s: f64,
    /// Driver task-dispatch throughput, tasks/second.
    pub task_dispatch_per_s: f64,
    /// Anchored per-iteration overhead of the 2D Floyd-Warshall solver:
    /// the paper measures a nearly block-size-independent 16–21 s per
    /// iteration (Table 2), dominated by per-iteration job/collect/
    /// broadcast machinery; we anchor rather than reverse-engineer pySpark.
    pub fw2d_iteration_anchor_s: f64,
    /// Spark shuffle-file compression ratio for dense `f64` blocks.
    pub shuffle_compression: f64,
    /// Fraction of copy-shuffle records that still cross the network when
    /// the custom partitioner places copies next to their consumers (the
    /// MD partitioner's purpose, §4.4); PH gets no such discount.
    pub copy_locality_discount: f64,
    /// Effective seconds/op of the highly optimized DC solver's kernel
    /// (its blocked kernels beat SciPy's Floyd-Warshall; Fig. 5 shows
    /// ≈1.5–2 Gops/core).
    pub dc_sec_per_op: f64,
}

impl Default for SparkOverheads {
    fn default() -> Self {
        SparkOverheads {
            per_job_s: 1.0,
            task_dispatch_per_s: 4000.0,
            fw2d_iteration_anchor_s: 15.0,
            shuffle_compression: 0.62,
            copy_locality_discount: 0.3,
            dc_sec_per_op: 0.75e-9,
        }
    }
}

/// Feasibility verdict of a projected run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Feasibility {
    /// Fits the cluster.
    Feasible,
    /// Local SSD staging would overflow (the paper's Blocked-IM failure
    /// mode at `n = 262144, p = 1024` and at small `b`, §5.2/§5.4).
    OutOfLocalStorage {
        /// Bytes of staging the run would accumulate.
        required_bytes: u64,
        /// Total local staging capacity.
        capacity_bytes: u64,
    },
    /// Aggregate executor memory cannot hold the working set.
    OutOfMemory {
        /// Bytes needed resident.
        required_bytes: u64,
        /// Total executor memory.
        capacity_bytes: u64,
    },
}

impl Feasibility {
    /// Whether the run completes.
    pub fn is_feasible(&self) -> bool {
        matches!(self, Feasibility::Feasible)
    }
}

/// Per-iteration cost decomposition, seconds.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CostBreakdown {
    /// Kernel execution on executors.
    pub compute_s: f64,
    /// Driver-mediated collects/broadcasts.
    pub driver_s: f64,
    /// Cross-node shuffle transfer.
    pub shuffle_s: f64,
    /// Shared-FS side channel + local SSD staging.
    pub storage_s: f64,
    /// Job/stage/task-dispatch overheads.
    pub overhead_s: f64,
}

impl CostBreakdown {
    /// Sum of all components.
    pub fn total(&self) -> f64 {
        self.compute_s + self.driver_s + self.shuffle_s + self.storage_s + self.overhead_s
    }
}

/// Outcome of projecting a solver onto a cluster.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Projection {
    /// Which solver.
    pub solver: SolverKind,
    /// Number of iterations (Table 2 "Iterations" column).
    pub iterations: u64,
    /// Seconds per iteration (Table 2 "Single").
    pub single_iteration_s: f64,
    /// Projected wall-clock seconds (Table 2 "Projected" / Table 3).
    pub total_s: f64,
    /// Whether the run fits the cluster.
    pub feasibility: Feasibility,
    /// Per-iteration decomposition of `single_iteration_s`.
    pub breakdown: CostBreakdown,
}

impl Projection {
    /// Normalized throughput `n³ / (total · p)` in Gops/core — the paper's
    /// Fig. 5 metric.
    pub fn gops_per_core(&self, n: usize, p: usize) -> f64 {
        (n as f64).powi(3) / self.total_s / p as f64 / 1e9
    }
}

/// Time for `ntasks` independent tasks of `task_s` seconds each on `p`
/// cores: whole rounds of `p`, inflated by residual skew.
fn parallel_time(ntasks: usize, task_s: f64, p: usize, eff_skew: f64) -> f64 {
    if ntasks == 0 {
        return 0.0;
    }
    task_s * (ntasks as f64 / p as f64).ceil() * eff_skew
}

struct Env {
    p: usize,
    q: usize,
    partitions: usize,
    block_bytes: f64,
    eff_skew: f64,
    agg_net: f64,
    agg_ssd: f64,
    gpfs: f64,
    nic: f64,
    cross: f64,
}

fn env(w: &Workload, spec: &ClusterSpec) -> Env {
    let p = spec.total_cores();
    let q = w.q();
    let partitions = w.partitions_per_core.max(1) * p;
    let skew = skew_factor(w.partitioner, q, partitions);
    // Over-decomposition lets dynamic scheduling shave the straggler
    // partition: with B waves per core the residual imbalance is the skew
    // of the *last* wave only.
    let eff_skew = 1.0 + (skew - 1.0) / w.partitions_per_core.max(1) as f64;
    Env {
        p,
        q,
        partitions,
        block_bytes: (w.b * w.b * 8) as f64,
        eff_skew,
        agg_net: spec.aggregate_net_bandwidth(),
        agg_ssd: spec.aggregate_ssd_bandwidth(),
        gpfs: spec.shared_fs_bandwidth_bps,
        nic: spec.nic_bandwidth_bps,
        cross: spec.cross_node_fraction(),
    }
}

/// Working-set memory check shared by the Spark solvers: the blocked
/// matrix (upper triangle) plus one in-flight copy must fit executor RAM.
fn memory_check(w: &Workload, spec: &ClusterSpec) -> Option<Feasibility> {
    let q = w.q() as u64;
    let blocks_ut = q * (q + 1) / 2;
    let required = 2 * blocks_ut * (w.b * w.b * 8) as u64;
    if required > spec.total_ram() {
        Some(Feasibility::OutOfMemory {
            required_bytes: required,
            capacity_bytes: spec.total_ram(),
        })
    } else {
        None
    }
}

/// Projects one solver/workload/cluster combination.
pub fn project(
    solver: SolverKind,
    w: &Workload,
    spec: &ClusterSpec,
    rates: &KernelRates,
    ov: &SparkOverheads,
) -> Projection {
    match solver {
        SolverKind::RepeatedSquaring => project_rs(w, spec, rates, ov),
        SolverKind::FloydWarshall2D => project_fw2d(w, spec, rates, ov),
        SolverKind::BlockedInMemory => project_im(w, spec, rates, ov),
        SolverKind::BlockedCollectBroadcast => project_cb(w, spec, rates, ov),
        SolverKind::MpiFw2d => project_mpi_fw2d(w, spec, rates),
        SolverKind::MpiDc => project_mpi_dc(w, spec, ov),
    }
}

/// Algorithm 1: per "iteration" = one column-block sweep; `q·⌈log₂ n⌉`
/// sweeps total (Table 2 counts iterations this way: e.g. `b = 1024,
/// n = 262144 → 18 × 256 = 4608`).
fn project_rs(
    w: &Workload,
    spec: &ClusterSpec,
    rates: &KernelRates,
    ov: &SparkOverheads,
) -> Projection {
    let e = env(w, spec);
    let iterations = (e.q as u64) * (w.n.max(2) as f64).log2().ceil() as u64;

    // One sweep: every block of A min-plus-multiplies one column block.
    let compute_s = parallel_time(e.q * e.q, rates.minplus_block_s(w.b), e.p, e.eff_skew);
    // Column collected at the driver, staged to GPFS, fetched per node.
    let driver_s = e.q as f64 * e.block_bytes / e.nic + ov.per_job_s;
    let storage_s = e.q as f64 * e.block_bytes / e.gpfs
        + spec.nodes as f64 * e.q as f64 * e.block_bytes / e.gpfs;
    // reduceByKey of partial products: post-combine records, compressed,
    // and MD-placed toward the result owners.
    let records = (e.q * e.q).min(e.q * e.partitions) as f64;
    let locality = match w.partitioner {
        PartitionerKind::MultiDiagonal => ov.copy_locality_discount,
        PartitionerKind::PortableHash => 1.0,
    };
    let shuffle_s = records * e.block_bytes * ov.shuffle_compression * locality * e.cross
        / e.agg_net
        * e.eff_skew;
    let overhead_s = 2.0 * ov.per_job_s + 2.0 * e.partitions as f64 / ov.task_dispatch_per_s;

    let breakdown = CostBreakdown {
        compute_s,
        driver_s,
        shuffle_s,
        storage_s,
        overhead_s,
    };
    let single = breakdown.total();
    Projection {
        solver: SolverKind::RepeatedSquaring,
        iterations,
        single_iteration_s: single,
        total_s: single * iterations as f64,
        feasibility: memory_check(w, spec).unwrap_or(Feasibility::Feasible),
        breakdown,
    }
}

/// Algorithm 2: `n` iterations of (extract column k → collect → broadcast
/// → rank-1 update of every block).
fn project_fw2d(
    w: &Workload,
    spec: &ClusterSpec,
    rates: &KernelRates,
    ov: &SparkOverheads,
) -> Projection {
    let e = env(w, spec);
    let iterations = w.n as u64;
    let n8 = w.n as f64 * 8.0;

    // O(n²) rank-1 update spread over the partitions.
    let per_task_ops = (w.n as f64).powi(2) / e.partitions as f64;
    let compute_s = parallel_time(
        e.partitions,
        per_task_ops * rates.update_sec_per_op,
        e.p,
        e.eff_skew,
    );
    let driver_s = n8 / e.nic; // column to driver
    let shuffle_s = spec.nodes as f64 * n8 / e.agg_net; // broadcast out
    let overhead_s =
        ov.fw2d_iteration_anchor_s + 2.0 * e.partitions as f64 / ov.task_dispatch_per_s;

    let breakdown = CostBreakdown {
        compute_s,
        driver_s,
        shuffle_s,
        storage_s: 0.0,
        overhead_s,
    };
    let single = breakdown.total();
    Projection {
        solver: SolverKind::FloydWarshall2D,
        iterations,
        single_iteration_s: single,
        total_s: single * iterations as f64,
        feasibility: memory_check(w, spec).unwrap_or(Feasibility::Feasible),
        breakdown,
    }
}

/// Algorithm 3: `q` iterations of (diagonal FW → copy-shuffle Phase 2 →
/// copy-shuffle + repartition Phase 3). Shuffle files accumulate on local
/// SSDs ("preserved for fault tolerance", §5.2) — the feasibility cliff.
fn project_im(
    w: &Workload,
    spec: &ClusterSpec,
    rates: &KernelRates,
    ov: &SparkOverheads,
) -> Projection {
    let e = env(w, spec);
    let q = e.q;
    let iterations = q as u64;

    let blocks_ut = (q * (q + 1) / 2) as f64;

    // Phase 1: diagonal block solved sequentially on one executor.
    let diag_s = rates.fw_block_s(w.b);
    // Phase 2: 2(q-1) row/column block updates.
    let p2_s = parallel_time(
        2 * q.saturating_sub(1),
        rates.minplus_block_s(w.b),
        e.p,
        e.eff_skew,
    );
    // Phase 3: one product per stored (upper-triangular) block — symmetry
    // halves the work exactly as in the solvers (§4).
    let p3_s = parallel_time(
        blocks_ut as usize,
        rates.minplus_block_s(w.b),
        e.p,
        e.eff_skew,
    );
    let compute_s = diag_s + p2_s + p3_s;

    // Copy shuffles: CopyDiag (q-1 copies) + CopyCol (2(q-1)² copies);
    // plus the pairing combineByKey after `union`, which — having lost the
    // partitioner — re-shuffles the stored A blocks too. The MD
    // partitioner places copies with their consumers.
    let locality = match w.partitioner {
        PartitionerKind::MultiDiagonal => ov.copy_locality_discount,
        PartitionerKind::PortableHash => 1.0,
    };
    let copies = (q.saturating_sub(1) + 2 * q.saturating_sub(1).pow(2)) as f64;
    let shuffle_s =
        (copies + blocks_ut) * e.block_bytes * ov.shuffle_compression * locality * e.cross
            / e.agg_net
            * e.eff_skew;
    // Every shuffled record is staged in local SSD shuffle files
    // regardless of where it lands.
    let spill_per_iter = (copies + blocks_ut) * e.block_bytes * ov.shuffle_compression;
    let storage_s = spill_per_iter / e.agg_ssd;

    let overhead_s = 3.0 * ov.per_job_s + 3.0 * e.partitions as f64 / ov.task_dispatch_per_s;

    let breakdown = CostBreakdown {
        compute_s,
        driver_s: 0.0,
        shuffle_s,
        storage_s,
        overhead_s,
    };
    let single = breakdown.total();

    // Cumulative staging vs capacity: the paper's IM failure mode.
    let required = (spill_per_iter * iterations as f64) as u64;
    let feasibility = memory_check(w, spec).unwrap_or({
        if required > spec.total_ssd_capacity() {
            Feasibility::OutOfLocalStorage {
                required_bytes: required,
                capacity_bytes: spec.total_ssd_capacity(),
            }
        } else {
            Feasibility::Feasible
        }
    });

    Projection {
        solver: SolverKind::BlockedInMemory,
        iterations,
        single_iteration_s: single,
        total_s: single * iterations as f64,
        feasibility,
        breakdown,
    }
}

/// Algorithm 4: `q` iterations; Phase 1/2 results move through the driver
/// and GPFS instead of copy shuffles; staging is bounded per iteration.
fn project_cb(
    w: &Workload,
    spec: &ClusterSpec,
    rates: &KernelRates,
    ov: &SparkOverheads,
) -> Projection {
    let e = env(w, spec);
    let q = e.q;
    let iterations = q as u64;

    let blocks_ut = (q * (q + 1) / 2) as f64;

    let diag_s = rates.fw_block_s(w.b);
    let p2_s = parallel_time(
        2 * q.saturating_sub(1),
        rates.minplus_block_s(w.b),
        e.p,
        e.eff_skew,
    );
    // Symmetry: only the stored upper-triangular blocks are updated.
    let p3_s = parallel_time(
        blocks_ut as usize,
        rates.minplus_block_s(w.b),
        e.p,
        e.eff_skew,
    );
    let compute_s = diag_s + p2_s + p3_s;

    // Driver collects: the diagonal block + the updated row/column.
    let driver_s = (1.0 + q as f64) * e.block_bytes / e.nic;
    // GPFS: write the collected blocks; every node fetches the column once
    // (symmetry makes the row side the transpose) and caches it.
    let storage_gpfs = (1.0 + q as f64) * e.block_bytes / e.gpfs
        + spec.nodes as f64 * q as f64 * e.block_bytes / e.gpfs;
    // Final repartition: local shuffle-file staging only (records already
    // placed by the MD layout).
    let spill_per_iter = blocks_ut * e.block_bytes * ov.shuffle_compression;
    let storage_s = storage_gpfs + spill_per_iter / e.agg_ssd;

    let overhead_s = 3.0 * ov.per_job_s + 3.0 * e.partitions as f64 / ov.task_dispatch_per_s;

    let breakdown = CostBreakdown {
        compute_s,
        driver_s,
        shuffle_s: 0.0,
        storage_s,
        overhead_s,
    };
    let single = breakdown.total();

    // Shuffle files from iteration i are dereferenced (and cleaned) once
    // iteration i+1's RDD replaces A — staging is bounded, not cumulative.
    let feasibility = memory_check(w, spec).unwrap_or({
        if (spill_per_iter as u64) > spec.total_ssd_capacity() {
            Feasibility::OutOfLocalStorage {
                required_bytes: spill_per_iter as u64,
                capacity_bytes: spec.total_ssd_capacity(),
            }
        } else {
            Feasibility::Feasible
        }
    });

    Projection {
        solver: SolverKind::BlockedCollectBroadcast,
        iterations,
        single_iteration_s: single,
        total_s: single * iterations as f64,
        feasibility,
        breakdown,
    }
}

/// Naive MPI 2D Floyd-Warshall on a `√p × √p` grid: `n` iterations, each
/// broadcasting the pivot row/column panels with flat-tree sends (the
/// "naive" in the paper's naming) and applying the O((n/√p)²) update.
fn project_mpi_fw2d(w: &Workload, spec: &ClusterSpec, rates: &KernelRates) -> Projection {
    let p = spec.total_cores();
    let sqrt_p = (p as f64).sqrt();
    let panel = w.n as f64 / sqrt_p;
    let update_s = panel * panel * rates.update_sec_per_op;
    let bcast_s =
        2.0 * (sqrt_p - 1.0).max(0.0) * (spec.nic_latency_s + panel * 8.0 / spec.nic_bandwidth_bps);
    let single = update_s + bcast_s;
    let iterations = w.n as u64;
    Projection {
        solver: SolverKind::MpiFw2d,
        iterations,
        single_iteration_s: single,
        total_s: single * iterations as f64,
        feasibility: Feasibility::Feasible,
        breakdown: CostBreakdown {
            compute_s: update_s,
            shuffle_s: bcast_s,
            ..Default::default()
        },
    }
}

/// Solomonik-style divide-and-conquer APSP: communication-optimal
/// recursion; modeled as one "iteration" (total = compute + bandwidth
/// term `(n²/√p)·log p`).
fn project_mpi_dc(w: &Workload, spec: &ClusterSpec, ov: &SparkOverheads) -> Projection {
    let p = spec.total_cores();
    let sqrt_p = (p as f64).sqrt();
    let compute_s = (w.n as f64).powi(3) * ov.dc_sec_per_op / p as f64;
    let comm_s = (w.n as f64).powi(2) * 8.0 / sqrt_p / spec.nic_bandwidth_bps * (p as f64).log2()
        / spec.nodes as f64
        * (spec.nodes as f64 / sqrt_p).max(1.0);
    let total = compute_s + comm_s;
    Projection {
        solver: SolverKind::MpiDc,
        iterations: 1,
        single_iteration_s: total,
        total_s: total,
        feasibility: Feasibility::Feasible,
        breakdown: CostBreakdown {
            compute_s,
            shuffle_s: comm_s,
            ..Default::default()
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_env() -> (ClusterSpec, KernelRates, SparkOverheads) {
        (
            ClusterSpec::paper_cluster(),
            KernelRates::paper(),
            SparkOverheads::default(),
        )
    }

    fn proj(solver: SolverKind, n: usize, b: usize) -> Projection {
        let (spec, rates, ov) = paper_env();
        project(solver, &Workload::paper_default(n, b), &spec, &rates, &ov)
    }

    const DAY: f64 = 86_400.0;
    const HOUR: f64 = 3_600.0;

    #[test]
    fn table2_iteration_counts_match_paper() {
        // Paper Table 2, n = 262144: iterations per method and block size.
        assert_eq!(
            proj(SolverKind::RepeatedSquaring, 262144, 1024).iterations,
            4608
        );
        assert_eq!(
            proj(SolverKind::RepeatedSquaring, 262144, 256).iterations,
            18432
        );
        assert_eq!(
            proj(SolverKind::FloydWarshall2D, 262144, 2048).iterations,
            262144
        );
        assert_eq!(
            proj(SolverKind::BlockedInMemory, 262144, 1024).iterations,
            256
        );
        assert_eq!(
            proj(SolverKind::BlockedCollectBroadcast, 262144, 4096).iterations,
            64
        );
    }

    #[test]
    fn table2_rs_and_fw2d_project_to_days() {
        // The paper's headline: both naive methods are infeasible in time
        // (projections in days) at n = 262144.
        for b in [256, 1024, 4096] {
            let rs = proj(SolverKind::RepeatedSquaring, 262144, b);
            assert!(
                rs.total_s > 4.0 * DAY,
                "RS b={b}: {} days",
                rs.total_s / DAY
            );
            let fw = proj(SolverKind::FloydWarshall2D, 262144, b);
            assert!(
                fw.total_s > 30.0 * DAY,
                "FW2D b={b}: {} days",
                fw.total_s / DAY
            );
        }
    }

    #[test]
    fn table2_blocked_methods_project_to_hours() {
        for b in [1024, 2048] {
            let im = proj(SolverKind::BlockedInMemory, 262144, b);
            let cb = proj(SolverKind::BlockedCollectBroadcast, 262144, b);
            assert!(im.total_s < 24.0 * HOUR, "IM b={b}: {}h", im.total_s / HOUR);
            assert!(cb.total_s < 16.0 * HOUR, "CB b={b}: {}h", cb.total_s / HOUR);
            // CB beats IM (avoids copy shuffles).
            assert!(
                cb.total_s < im.total_s,
                "b={b}: CB {} !< IM {}",
                cb.total_s,
                im.total_s
            );
        }
    }

    #[test]
    fn cb_close_to_paper_at_best_block() {
        // Paper: CB(MD) b=1024, n=262144 projected 7h8m. Require the model
        // within 2× of the paper's value.
        let cb = proj(SolverKind::BlockedCollectBroadcast, 262144, 1024);
        let paper = 7.0 * HOUR + 8.0 * 60.0;
        assert!(
            cb.total_s > paper / 2.0 && cb.total_s < paper * 2.0,
            "CB projection {}h vs paper 7.1h",
            cb.total_s / HOUR
        );
    }

    #[test]
    fn im_storage_cliff_matches_paper() {
        let (spec, rates, ov) = paper_env();
        // n=131072, p=1024 (Fig. 3): IM fails below b=1024, works at 1024+.
        for (b, feasible) in [(512, false), (768, false), (1024, true), (2048, true)] {
            let w = Workload::paper_default(131072, b);
            let im = project(SolverKind::BlockedInMemory, &w, &spec, &rates, &ov);
            assert_eq!(
                im.feasibility.is_feasible(),
                feasible,
                "IM n=131072 b={b}: {:?}",
                im.feasibility
            );
        }
        // n=262144, p=1024 (Table 3): IM runs out of local storage.
        let w = Workload::paper_default(262144, 2048);
        let im = project(SolverKind::BlockedInMemory, &w, &spec, &rates, &ov);
        assert!(!im.feasibility.is_feasible(), "IM should fail at n=262144");
        // CB stays feasible at the same sizes.
        let cb = project(SolverKind::BlockedCollectBroadcast, &w, &spec, &rates, &ov);
        assert!(cb.feasibility.is_feasible());
    }

    #[test]
    fn ph_partitioner_never_beats_md() {
        let (spec, rates, ov) = paper_env();
        for solver in [
            SolverKind::BlockedInMemory,
            SolverKind::BlockedCollectBroadcast,
        ] {
            for b in [1024, 2048, 4096] {
                let mut w = Workload::paper_default(262144, b);
                let md = project(solver, &w, &spec, &rates, &ov);
                w.partitioner = PartitionerKind::PortableHash;
                let ph = project(solver, &w, &spec, &rates, &ov);
                assert!(
                    ph.total_s >= md.total_s * 0.999,
                    "{:?} b={b}: PH {} < MD {}",
                    solver,
                    ph.total_s,
                    md.total_s
                );
            }
        }
    }

    #[test]
    fn over_decomposition_helps_at_large_blocks() {
        // Fig. 3: B=1 is worse than B=2, especially for PH at large b.
        let (spec, rates, ov) = paper_env();
        let mut w1 = Workload {
            n: 131072,
            b: 2048,
            partitions_per_core: 1,
            partitioner: PartitionerKind::PortableHash,
        };
        let t1 = project(SolverKind::BlockedCollectBroadcast, &w1, &spec, &rates, &ov).total_s;
        w1.partitions_per_core = 2;
        let t2 = project(SolverKind::BlockedCollectBroadcast, &w1, &spec, &rates, &ov).total_s;
        assert!(t1 > t2, "B=1 ({t1}) should be slower than B=2 ({t2})");
    }

    #[test]
    fn weak_scaling_table3_shape() {
        // n/p = 256; paper Table 3 block sizes; assert rough agreement and
        // the published orderings.
        let ov = SparkOverheads::default();
        let rates = KernelRates::paper();
        let cases: [(usize, usize, usize, f64); 3] = [
            // (p, n, b_cb, paper CB seconds)
            (64, 16384, 1024, 170.0),
            (256, 65536, 1536, 2056.0),
            (1024, 262144, 2560, 29340.0),
        ];
        for (p, n, b, paper_cb) in cases {
            let spec = ClusterSpec::paper_cluster_with_cores(p);
            let w = Workload::paper_default(n, b);
            let cb = project(SolverKind::BlockedCollectBroadcast, &w, &spec, &rates, &ov);
            assert!(
                cb.total_s > paper_cb / 3.0 && cb.total_s < paper_cb * 3.0,
                "p={p}: CB {}s vs paper {paper_cb}s",
                cb.total_s
            );
            let fw = project(SolverKind::MpiFw2d, &w, &spec, &rates, &ov);
            let dc = project(SolverKind::MpiDc, &w, &spec, &rates, &ov);
            // DC always wins (paper Fig. 5).
            assert!(
                dc.total_s < cb.total_s,
                "p={p}: DC {} !< CB {}",
                dc.total_s,
                cb.total_s
            );
            assert!(dc.total_s < fw.total_s, "p={p}: DC !< FW-2D-MPI");
            if p >= 1024 {
                // At scale, the naive MPI FW loses to the blocked Spark
                // solver (paper §5.5: "Spark-based solvers outperform naive
                // MPI-based solution for larger problem sizes").
                assert!(
                    fw.total_s > cb.total_s,
                    "p={p}: FW-2D-MPI {} should lose to CB {}",
                    fw.total_s,
                    cb.total_s
                );
            }
        }
    }

    #[test]
    fn mpi_fw2d_close_to_paper_at_small_p() {
        // Paper: FW-2D-GbE at p=64 (n=16384) = 2m3s; the flat-tree model
        // should land within 50%.
        let rates = KernelRates::paper();
        let spec = ClusterSpec::paper_cluster_with_cores(64);
        let w = Workload::paper_default(16384, 1024);
        let fw = project(
            SolverKind::MpiFw2d,
            &w,
            &spec,
            &rates,
            &SparkOverheads::default(),
        );
        assert!(
            (fw.total_s - 123.0).abs() < 62.0,
            "FW-2D p=64: {}s vs paper 123s",
            fw.total_s
        );
    }

    #[test]
    fn gops_normalization() {
        let p = 1024;
        let spec = ClusterSpec::paper_cluster();
        let w = Workload::paper_default(262144, 2560);
        let cb = project(
            SolverKind::BlockedCollectBroadcast,
            &w,
            &spec,
            &KernelRates::paper(),
            &SparkOverheads::default(),
        );
        let gops = cb.gops_per_core(262144, p);
        // Paper reports ~0.6 Gops/core (78% of sequential 0.762) for CB at
        // p=1024; allow a wide band but demand the right magnitude.
        assert!(gops > 0.15 && gops < 1.5, "gops/core = {gops}");
    }

    #[test]
    fn memory_cliff_detected() {
        // A problem that cannot fit 6 TB of RAM: n = 1M → ~8 TB dense.
        let (spec, rates, ov) = paper_env();
        let w = Workload::paper_default(1 << 20, 4096);
        let cb = project(SolverKind::BlockedCollectBroadcast, &w, &spec, &rates, &ov);
        assert!(matches!(cb.feasibility, Feasibility::OutOfMemory { .. }));
    }

    #[test]
    fn breakdown_sums_to_single_iteration() {
        let pj = proj(SolverKind::BlockedCollectBroadcast, 131072, 1024);
        assert!((pj.breakdown.total() - pj.single_iteration_s).abs() < 1e-9);
        assert!((pj.total_s - pj.single_iteration_s * pj.iterations as f64).abs() < 1e-6);
    }
}
