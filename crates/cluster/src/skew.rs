//! Partitioner-skew quantification.
//!
//! The projection models need to know how unevenly each partitioner
//! spreads the upper-triangular block keys; rather than assuming a skew,
//! we *compute* it from the very partitioner implementations the solvers
//! use (the paper's Fig. 3 bottom panel does the same empirically).

use crate::model::PartitionerKind;
use sparklet::partitioner::{MultiDiagonalPartitioner, Partitioner, PortableHashPartitioner};

/// Blocks-per-partition histogram for the upper-triangular keys of a
/// `q × q` block grid under the given partitioner with `partitions`
/// output partitions (the data behind the paper's Fig. 3 bottom panel).
pub fn partition_load_histogram(kind: PartitionerKind, q: usize, partitions: usize) -> Vec<usize> {
    let mut hist = vec![0usize; partitions];
    match kind {
        PartitionerKind::MultiDiagonal => {
            let p = MultiDiagonalPartitioner::new(q, partitions);
            for i in 0..q {
                for j in i..q {
                    hist[p.partition(&(i, j))] += 1;
                }
            }
        }
        PartitionerKind::PortableHash => {
            let p = PortableHashPartitioner::<(usize, usize)>::new(partitions);
            for i in 0..q {
                for j in i..q {
                    hist[p.partition(&(i, j))] += 1;
                }
            }
        }
    }
    hist
}

/// Max-over-mean load of the non-ideal partition distribution: `1.0` means
/// perfectly balanced; the straggler partition takes `skew ×` the average
/// work.
pub fn skew_factor(kind: PartitionerKind, q: usize, partitions: usize) -> f64 {
    let hist = partition_load_histogram(kind, q, partitions);
    let total: usize = hist.iter().sum();
    if total == 0 {
        return 1.0;
    }
    let mean = total as f64 / partitions as f64;
    let max = *hist.iter().max().unwrap() as f64;
    (max / mean).max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn md_is_near_balanced() {
        for (q, parts) in [(64, 256), (128, 2048), (256, 2048)] {
            let s = skew_factor(PartitionerKind::MultiDiagonal, q, parts);
            // Round-robin enumeration balances to ±1 block.
            let blocks = q * (q + 1) / 2;
            let mean = blocks as f64 / parts as f64;
            assert!(
                s <= (mean.floor() + 1.0) / mean + 1e-9,
                "q={q} parts={parts}: skew {s}"
            );
        }
    }

    #[test]
    fn ph_is_more_skewed_than_md() {
        // The paper's key observation (§5.3): the XOR-mixing portable_hash
        // collides on upper-triangular tuples, so PH skew > MD skew.
        for (q, parts) in [(128, 2048), (256, 2048), (64, 1024)] {
            let ph = skew_factor(PartitionerKind::PortableHash, q, parts);
            let md = skew_factor(PartitionerKind::MultiDiagonal, q, parts);
            assert!(
                ph > md,
                "q={q} parts={parts}: PH skew {ph} not worse than MD {md}"
            );
        }
    }

    #[test]
    fn histogram_conserves_blocks() {
        let q = 100;
        let parts = 64;
        for kind in [
            PartitionerKind::MultiDiagonal,
            PartitionerKind::PortableHash,
        ] {
            let hist = partition_load_histogram(kind, q, parts);
            assert_eq!(hist.iter().sum::<usize>(), q * (q + 1) / 2);
        }
    }

    #[test]
    fn skew_is_at_least_one() {
        assert!(skew_factor(PartitionerKind::MultiDiagonal, 4, 64) >= 1.0);
    }
}
