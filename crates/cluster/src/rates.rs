//! Sequential kernel rates: the compute side of every projection.

use apsp_blockmat::{kernels, Block};
use std::time::Instant;

/// Seconds-per-operation of the three sequential kernels the solvers
/// dispatch to "bare metal" (the paper offloads these to SciPy/MKL and
/// Numba; we offload to the `apsp-blockmat` kernels).
///
/// Operation counts: in-block Floyd-Warshall and min-plus product are
/// `b³`; the rank-1 `FloydWarshallUpdate` is `b²` per block.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelRates {
    /// In-block Floyd-Warshall, seconds per (i,j,k) relaxation.
    pub fw_sec_per_op: f64,
    /// Min-plus product, seconds per multiply-min.
    pub minplus_sec_per_op: f64,
    /// Rank-1 update, seconds per element update.
    pub update_sec_per_op: f64,
}

impl KernelRates {
    /// Rates anchored to the paper's published measurements:
    /// `T1(n=256) = 0.022 s` → `0.022 / 256³ ≈ 1.31 ns/op` (§5.4, and
    /// consistent with Fig. 2's ~1400 s at `b = 10000`).
    pub fn paper() -> Self {
        KernelRates {
            fw_sec_per_op: 0.022 / (256.0f64).powi(3),
            minplus_sec_per_op: 1.2e-9,
            update_sec_per_op: 1.5e-9,
        }
    }

    /// Measures the kernels on the host at block side `b` (single
    /// repetition; pass a cache-resident `b` like 256–512 for the rate the
    /// solvers see on small blocks, or larger for the post-knee regime).
    pub fn measure(b: usize) -> Self {
        let mk = |seed: u64| {
            Block::from_fn(b, |i, j| {
                if i == j {
                    0.0
                } else {
                    // Deterministic pseudo-weights; fully dense so the
                    // kernels cannot take the INF shortcut.
                    1.0 + ((i * 31 + j * 17 + seed as usize) % 97) as f64
                }
            })
        };
        let ops = (b as f64).powi(3);

        let mut fw = mk(1);
        let t0 = Instant::now();
        kernels::floyd_warshall_in_place(&mut fw);
        let fw_rate = t0.elapsed().as_secs_f64() / ops;

        let a = mk(2);
        let x = mk(3);
        let mut c = Block::infinity(b);
        let t1 = Instant::now();
        // Explicitly packed: these are *sequential* per-core rates feeding
        // the cluster model (parallelism is applied by the model itself),
        // so auto-dispatch going rayon-parallel at b >= 1024 must not leak
        // an N-core rate in here.
        kernels::min_plus_into_packed(&a, &x, &mut c);
        let mp_rate = t1.elapsed().as_secs_f64() / ops;

        let mut u = mk(4);
        let col_i: Vec<f64> = (0..b).map(|i| i as f64).collect();
        let col_j: Vec<f64> = (0..b).map(|j| (j * 2) as f64).collect();
        let t2 = Instant::now();
        // Repeat the b² kernel b times so timer resolution is adequate and
        // the rate is comparable (total ops = b³).
        for _ in 0..b {
            kernels::fw_update_outer(&mut u, &col_i, &col_j);
        }
        let up_rate = t2.elapsed().as_secs_f64() / ops;

        KernelRates {
            fw_sec_per_op: fw_rate,
            minplus_sec_per_op: mp_rate,
            update_sec_per_op: up_rate,
        }
    }

    /// Time to Floyd-Warshall one `b × b` block sequentially.
    pub fn fw_block_s(&self, b: usize) -> f64 {
        self.fw_sec_per_op * (b as f64).powi(3)
    }

    /// Time for one `b × b` min-plus block product.
    pub fn minplus_block_s(&self, b: usize) -> f64 {
        self.minplus_sec_per_op * (b as f64).powi(3)
    }

    /// Time for one rank-1 update of a `b × b` block.
    pub fn update_block_s(&self, b: usize) -> f64 {
        self.update_sec_per_op * (b as f64).powi(2)
    }

    /// The paper's sequential baseline `T1` for problem size `n` (used to
    /// normalize Gops/core in Fig. 5).
    pub fn t1_s(&self, n: usize) -> f64 {
        self.fw_sec_per_op * (n as f64).powi(3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_rates_match_published_t1() {
        let r = KernelRates::paper();
        assert!((r.t1_s(256) - 0.022).abs() < 1e-12);
        // 0.762 Gops at n=256 (paper §5.4).
        let gops = (256.0f64).powi(3) / r.t1_s(256) / 1e9;
        assert!((gops - 0.762).abs() < 0.01, "gops = {gops}");
    }

    #[test]
    fn measured_rates_are_sane() {
        let r = KernelRates::measure(128);
        for (name, v) in [
            ("fw", r.fw_sec_per_op),
            ("minplus", r.minplus_sec_per_op),
            ("update", r.update_sec_per_op),
        ] {
            assert!(v > 1e-12, "{name} rate too small: {v}");
            assert!(v < 1e-6, "{name} rate implausibly large: {v}");
        }
    }

    #[test]
    fn block_times_scale_cubically() {
        let r = KernelRates::paper();
        assert!((r.fw_block_s(512) / r.fw_block_s(256) - 8.0).abs() < 1e-9);
        assert!((r.minplus_block_s(1024) / r.minplus_block_s(256) - 64.0).abs() < 1e-9);
        assert!((r.update_block_s(512) / r.update_block_s(256) - 4.0).abs() < 1e-9);
    }
}
