//! Crate-isolation smoke tests for `cargo test -p apsp-cluster`: the
//! projection pipeline end-to-end on the paper's testbed.

use apsp_cluster::{
    project, ClusterSpec, KernelRates, PartitionerKind, SolverKind, SparkOverheads, Workload,
};

#[test]
fn paper_workload_projects_to_positive_finite_time() {
    let spec = ClusterSpec::paper_cluster();
    let rates = KernelRates::paper();
    let w = Workload::paper_default(8192, 256);
    for solver in [
        SolverKind::RepeatedSquaring,
        SolverKind::FloydWarshall2D,
        SolverKind::BlockedInMemory,
        SolverKind::BlockedCollectBroadcast,
        SolverKind::MpiFw2d,
        SolverKind::MpiDc,
    ] {
        let p = project(solver, &w, &spec, &rates, &SparkOverheads::default());
        assert!(
            p.total_s.is_finite() && p.total_s > 0.0,
            "{solver:?}: {}",
            p.total_s
        );
        assert!(p.iterations >= 1, "{solver:?}");
    }
}

#[test]
fn portable_hash_skew_exceeds_multi_diagonal() {
    // The paper's Fig. 3 point: PH skews upper-triangular block keys, MD
    // balances them by construction.
    let (q, parts) = (64, 512);
    let md = apsp_cluster::skew_factor(PartitionerKind::MultiDiagonal, q, parts);
    let ph = apsp_cluster::skew_factor(PartitionerKind::PortableHash, q, parts);
    assert!(md >= 1.0 && ph >= 1.0, "skew factors are multipliers");
    assert!(ph > md, "expected PH ({ph}) more skewed than MD ({md})");
}

#[test]
fn blocked_im_hits_the_storage_cliff_at_paper_scale() {
    // §5.2/§5.4: Blocked-IM runs out of local staging at n = 262144.
    let spec = ClusterSpec::paper_cluster();
    let rates = KernelRates::paper();
    let w = Workload::paper_default(262_144, 1024);
    let p = project(
        SolverKind::BlockedInMemory,
        &w,
        &spec,
        &rates,
        &SparkOverheads::default(),
    );
    assert!(
        !p.feasibility.is_feasible(),
        "IM should be infeasible: {:?}",
        p.feasibility
    );
}
