//! Crate-isolation smoke tests for `cargo test -p apsp-bench`: the
//! formatting and JSON plumbing every harness binary relies on.

use apsp_bench::{fmt_duration, TextTable};

/// Regression guard for the hot path: the tropical auto-dispatch must
/// keep selecting the packed/parallel `f64` tiers at solver-relevant
/// block sides — a refactor that silently rerouted the tropical algebra
/// onto the generic fallback loops would also change these selections.
#[test]
fn tropical_auto_dispatch_keeps_the_packed_tier_at_large_sides() {
    use apsp_blockmat::kernels::{self, MinPlusKernel};
    for side in [128usize, 129, 256, 512, 1023] {
        assert_eq!(
            kernels::select(side),
            MinPlusKernel::Packed,
            "side {side} must stay on the packed register-blocked engine"
        );
    }
    assert_eq!(kernels::select(1024), MinPlusKernel::Parallel);

    // And the Tropical path-algebra fold is bit-identical to the packed
    // kernel's output at the tier boundary (it dispatches into the same
    // engine, not the generic semiring loop).
    use apsp_blockmat::{AlgBlock, Block, Offsets, Tropical};
    let b = 128;
    let a = Block::from_fn(b, |i, j| {
        if i == j {
            0.0
        } else {
            ((i * 7 + j) % 13) as f64
        }
    });
    let x = Block::from_fn(b, |i, j| {
        if i == j {
            0.0
        } else {
            ((i * 5 + j) % 11) as f64
        }
    });
    let mut packed = Block::infinity(b);
    kernels::min_plus_into_with(MinPlusKernel::Packed, &a, &x, &mut packed);
    let mut alg = AlgBlock::<Tropical>::from_dist(Block::infinity(b));
    alg.min_plus_into_self(
        MinPlusKernel::Auto,
        &a,
        &x,
        Offsets {
            k: 0,
            row: 0,
            col: 0,
        },
    );
    assert_eq!(alg.dist(), &packed);
}

/// The PR 6 twin of the tropical guard: the non-tropical dispatchers must
/// keep their specialized tiers — packed (max, min) at sides ≥ 128 for the
/// bottleneck algebra, and the bitset tier for *every* reachability side.
#[test]
fn non_tropical_auto_dispatch_keeps_the_specialized_tiers() {
    use apsp_blockmat::kernels::{self, BooleanKernel, MinPlusKernel};
    for side in [128usize, 129, 256, 512, 1023] {
        assert_eq!(
            kernels::select_maxmin(side),
            MinPlusKernel::Packed,
            "side {side} must stay on the packed (max, min) engine"
        );
    }
    assert_eq!(kernels::select_maxmin(64), MinPlusKernel::Branchless);
    assert_eq!(kernels::select_maxmin(1024), MinPlusKernel::Parallel);
    for side in [1usize, 64, 128, 1024, 4096] {
        assert_eq!(
            kernels::select_boolean(side),
            BooleanKernel::Bitset,
            "Reachability must always take the bitset tier (side {side})"
        );
    }

    // The Widest fold Auto-dispatches into the same packed engine the
    // explicit kernel runs (not the generic semiring loop)...
    use apsp_blockmat::{
        AlgBlock, BitBlock, BoolSemiring, BottleneckF64, ElemBlock, Offsets, Reachability, Widest,
    };
    let b = 128;
    let o0 = Offsets {
        k: 0,
        row: 0,
        col: 0,
    };
    let cap = |seed: usize| {
        ElemBlock::<BottleneckF64>::from_fn(b, |i, j| {
            if i == j {
                f64::INFINITY
            } else {
                ((i * 7 + j + seed) % 13) as f64
            }
        })
    };
    let (wa, wx) = (cap(2), cap(3));
    let mut packed = ElemBlock::<BottleneckF64>::zeros(b);
    kernels::maxmin_into_with(MinPlusKernel::Packed, &wa, &wx, &mut packed);
    let mut alg = AlgBlock::<Widest>::from_dist(ElemBlock::zeros(b));
    alg.min_plus_into_self(MinPlusKernel::Auto, &wa, &wx, o0);
    assert_eq!(alg.dist(), &packed);

    // ...and the Reachability fold is bit-identical to the word-packed
    // BitBlock product.
    let adj = |seed: usize| {
        ElemBlock::<BoolSemiring>::from_fn(b, |i, j| i == j || (i * 7 + j + seed).is_multiple_of(5))
    };
    let (ba, bx) = (adj(2), adj(3));
    let mut bits = BitBlock::zeros(b);
    kernels::bool_or_product_into(
        &BitBlock::from_elem_block(&ba),
        &BitBlock::from_elem_block(&bx),
        &mut bits,
    );
    let mut alg = AlgBlock::<Reachability>::from_dist(ElemBlock::zeros(b));
    alg.min_plus_into_self(MinPlusKernel::Auto, &ba, &bx, o0);
    assert_eq!(alg.dist(), &bits.to_elem_block());
}

#[test]
fn duration_formatting_matches_paper_tables() {
    assert_eq!(fmt_duration(0.022), "0.022s");
    assert_eq!(fmt_duration(45.0), "45s");
    assert_eq!(fmt_duration(170.0), "2m50s");
    assert_eq!(fmt_duration(8.0 * 3600.0 + 9.0 * 60.0), "8h9m");
    assert_eq!(fmt_duration(9.0 * 86400.0 + 16.0 * 3600.0), "9d16h");
    assert_eq!(fmt_duration(f64::INFINITY), "∞");
}

#[test]
fn text_table_renders_headers_and_rows() {
    let mut t = TextTable::new(&["solver", "time"]);
    t.row(vec!["Blocked-CB".into(), "45s".into()]);
    let s = t.render();
    assert!(s.contains("solver") && s.contains("Blocked-CB") && s.contains("45s"));
}

#[test]
fn write_json_emits_a_file_under_results() {
    #[derive(serde::Serialize)]
    struct Row {
        n: usize,
        t: f64,
    }
    let path = apsp_bench::write_json("smoke_test", &Row { n: 4, t: 1.5 }).unwrap();
    let text = std::fs::read_to_string(&path).unwrap();
    assert!(text.contains("\"n\": 4"), "{text}");
    let _ = std::fs::remove_file(path);
}
