//! Crate-isolation smoke tests for `cargo test -p apsp-bench`: the
//! formatting and JSON plumbing every harness binary relies on.

use apsp_bench::{fmt_duration, TextTable};

#[test]
fn duration_formatting_matches_paper_tables() {
    assert_eq!(fmt_duration(0.022), "0.022s");
    assert_eq!(fmt_duration(45.0), "45s");
    assert_eq!(fmt_duration(170.0), "2m50s");
    assert_eq!(fmt_duration(8.0 * 3600.0 + 9.0 * 60.0), "8h9m");
    assert_eq!(fmt_duration(9.0 * 86400.0 + 16.0 * 3600.0), "9d16h");
    assert_eq!(fmt_duration(f64::INFINITY), "∞");
}

#[test]
fn text_table_renders_headers_and_rows() {
    let mut t = TextTable::new(&["solver", "time"]);
    t.row(vec!["Blocked-CB".into(), "45s".into()]);
    let s = t.render();
    assert!(s.contains("solver") && s.contains("Blocked-CB") && s.contains("45s"));
}

#[test]
fn write_json_emits_a_file_under_results() {
    #[derive(serde::Serialize)]
    struct Row {
        n: usize,
        t: f64,
    }
    let path = apsp_bench::write_json("smoke_test", &Row { n: 4, t: 1.5 }).unwrap();
    let text = std::fs::read_to_string(&path).unwrap();
    assert!(text.contains("\"n\": 4"), "{text}");
    let _ = std::fs::remove_file(path);
}
