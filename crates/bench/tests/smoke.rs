//! Crate-isolation smoke tests for `cargo test -p apsp-bench`: the
//! formatting and JSON plumbing every harness binary relies on.

use apsp_bench::{fmt_duration, TextTable};

/// Regression guard for the hot path: the tropical auto-dispatch must
/// keep selecting the packed/parallel `f64` tiers at solver-relevant
/// block sides — a refactor that silently rerouted the tropical algebra
/// onto the generic fallback loops would also change these selections.
#[test]
fn tropical_auto_dispatch_keeps_the_packed_tier_at_large_sides() {
    use apsp_blockmat::kernels::{self, MinPlusKernel};
    for side in [128usize, 129, 256, 512, 1023] {
        assert_eq!(
            kernels::select(side),
            MinPlusKernel::Packed,
            "side {side} must stay on the packed register-blocked engine"
        );
    }
    assert_eq!(kernels::select(1024), MinPlusKernel::Parallel);

    // And the Tropical path-algebra fold is bit-identical to the packed
    // kernel's output at the tier boundary (it dispatches into the same
    // engine, not the generic semiring loop).
    use apsp_blockmat::{AlgBlock, Block, Offsets, Tropical};
    let b = 128;
    let a = Block::from_fn(b, |i, j| {
        if i == j {
            0.0
        } else {
            ((i * 7 + j) % 13) as f64
        }
    });
    let x = Block::from_fn(b, |i, j| {
        if i == j {
            0.0
        } else {
            ((i * 5 + j) % 11) as f64
        }
    });
    let mut packed = Block::infinity(b);
    kernels::min_plus_into_with(MinPlusKernel::Packed, &a, &x, &mut packed);
    let mut alg = AlgBlock::<Tropical>::from_dist(Block::infinity(b));
    alg.min_plus_into_self(
        MinPlusKernel::Auto,
        &a,
        &x,
        Offsets {
            k: 0,
            row: 0,
            col: 0,
        },
    );
    assert_eq!(alg.dist(), &packed);
}

#[test]
fn duration_formatting_matches_paper_tables() {
    assert_eq!(fmt_duration(0.022), "0.022s");
    assert_eq!(fmt_duration(45.0), "45s");
    assert_eq!(fmt_duration(170.0), "2m50s");
    assert_eq!(fmt_duration(8.0 * 3600.0 + 9.0 * 60.0), "8h9m");
    assert_eq!(fmt_duration(9.0 * 86400.0 + 16.0 * 3600.0), "9d16h");
    assert_eq!(fmt_duration(f64::INFINITY), "∞");
}

#[test]
fn text_table_renders_headers_and_rows() {
    let mut t = TextTable::new(&["solver", "time"]);
    t.row(vec!["Blocked-CB".into(), "45s".into()]);
    let s = t.render();
    assert!(s.contains("solver") && s.contains("Blocked-CB") && s.contains("45s"));
}

#[test]
fn write_json_emits_a_file_under_results() {
    #[derive(serde::Serialize)]
    struct Row {
        n: usize,
        t: f64,
    }
    let path = apsp_bench::write_json("smoke_test", &Row { n: 4, t: 1.5 }).unwrap();
    let text = std::fs::read_to_string(&path).unwrap();
    assert!(text.contains("\"n\": 4"), "{text}");
    let _ = std::fs::remove_file(path);
}
