//! # apsp-bench — harnesses regenerating every table and figure
//!
//! One binary per evaluation artifact of the paper (run with
//! `cargo run --release -p apsp-bench --bin <name>`):
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `t1_sequential` | §5.4 sequential baseline `T1` (n = 256) |
//! | `fig2_sequential` | Fig. 2 — kernel time vs block size |
//! | `fig3_blocksize` | Fig. 3 top/middle — IM/CB time vs `b`, partitioner, `B` |
//! | `fig3_partition_skew` | Fig. 3 bottom — partition-size distribution |
//! | `table2_blocksize` | Table 2 — block-size effect per solver |
//! | `table3_weak_scaling` | Table 3 — weak scaling of the blocked + MPI solvers |
//! | `fig5_gops` | Fig. 5 — Gops/core weak-scaling curves |
//! | `real_solvers` | scaled-down *real* execution of all six solvers |
//! | `ablation_movement` | DESIGN.md ablation — shuffle vs side-channel volume |
//! | `bench_kernels` | kernel-engine GFLOP-eq rates → `results/BENCH_kernels.json` (trajectory point 0) |
//!
//! Each binary prints the regenerated rows next to the paper's published
//! values (embedded below) and writes machine-readable JSON under
//! `results/`. Projections default to paper-anchored kernel rates
//! ([`apsp_cluster::KernelRates::paper`]); pass `--host-rates` to
//! calibrate from this machine instead.
//!
//! Criterion microbenches (`cargo bench -p apsp-bench`) cover the Fig. 2
//! kernels, the solvers at miniature scale, and the partitioners.

use std::fmt::Write as _;
use std::path::Path;

pub mod paper;

/// Formats seconds the way the paper's tables do: `9d16h`, `8h9m`,
/// `2m50s`, `45s`, `0.022s`.
pub fn fmt_duration(seconds: f64) -> String {
    if !seconds.is_finite() {
        return "∞".into();
    }
    if seconds < 1.0 {
        return format!("{seconds:.3}s");
    }
    let s = seconds.round() as u64;
    let (d, rem) = (s / 86_400, s % 86_400);
    let (h, rem) = (rem / 3_600, rem % 3_600);
    let (m, sec) = (rem / 60, rem % 60);
    if d > 0 {
        format!("{d}d{h}h")
    } else if h > 0 {
        format!("{h}h{m}m")
    } else if m > 0 {
        format!("{m}m{sec}s")
    } else {
        format!("{sec}s")
    }
}

/// Simple fixed-width text table.
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        TextTable {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                let _ = write!(line, "{:<w$}", cells[i], w = widths[i] + 2);
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().map(|w| w + 2).sum();
        out.push_str(&"-".repeat(total.saturating_sub(2)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Writes a serializable result artifact under `results/` (relative to the
/// workspace root if it exists, else the current directory).
pub fn write_json<T: serde::Serialize>(
    name: &str,
    value: &T,
) -> std::io::Result<std::path::PathBuf> {
    let dir = if Path::new("results").exists() {
        Path::new("results").to_path_buf()
    } else if Path::new("../../results").exists() {
        Path::new("../../results").to_path_buf()
    } else {
        std::fs::create_dir_all("results")?;
        Path::new("results").to_path_buf()
    };
    let path = dir.join(format!("{name}.json"));
    std::fs::write(&path, serde_json::to_string_pretty(value)?)?;
    Ok(path)
}

/// Parses common CLI flags shared by the harness binaries.
#[derive(Debug, Clone, Default)]
pub struct HarnessArgs {
    /// Calibrate kernel rates on this machine instead of using the
    /// paper-anchored rates.
    pub host_rates: bool,
    /// Also run the scaled-down real-execution variant where supported.
    pub real: bool,
    /// Quick mode: shrink real-execution problem sizes.
    pub quick: bool,
}

impl HarnessArgs {
    /// Parses from `std::env::args`.
    pub fn parse() -> Self {
        let mut a = HarnessArgs::default();
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--host-rates" => a.host_rates = true,
                "--real" => a.real = true,
                "--quick" => a.quick = true,
                "--help" | "-h" => {
                    eprintln!("flags: --host-rates  calibrate kernel rates on this machine");
                    eprintln!("       --real        also run scaled-down real executions");
                    eprintln!("       --quick       shrink real-execution sizes");
                    std::process::exit(0);
                }
                other => eprintln!("ignoring unknown flag {other}"),
            }
        }
        a
    }

    /// Kernel rates per the flags.
    pub fn rates(&self) -> apsp_cluster::KernelRates {
        if self.host_rates {
            apsp_cluster::KernelRates::measure(256)
        } else {
            apsp_cluster::KernelRates::paper()
        }
    }
}

/// Ratio formatted as `1.3×` (model over paper).
pub fn ratio(model: f64, paper: f64) -> String {
    if paper <= 0.0 {
        "—".into()
    } else {
        format!("{:.2}×", model / paper)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_formats_match_paper_style() {
        assert_eq!(fmt_duration(0.022), "0.022s");
        assert_eq!(fmt_duration(45.0), "45s");
        assert_eq!(fmt_duration(170.0), "2m50s");
        assert_eq!(fmt_duration(29_340.0), "8h9m");
        assert_eq!(fmt_duration(86_400.0 * 9.0 + 3600.0 * 16.0), "9d16h");
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new(&["a", "method"]);
        t.row(vec!["1".into(), "Blocked-CB".into()]);
        let s = t.render();
        assert!(s.contains("Blocked-CB"));
        assert!(s.lines().count() >= 3);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn table_rejects_bad_row() {
        let mut t = TextTable::new(&["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn ratio_formats() {
        assert_eq!(ratio(2.0, 1.0), "2.00×");
        assert_eq!(ratio(1.0, 0.0), "—");
    }
}
