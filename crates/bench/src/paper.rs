//! The paper's published measurements, embedded for side-by-side
//! comparison in the harness output and `EXPERIMENTS.md`.
//!
//! Sources: Table 2 (`n = 262144, p = 1024, B = 2`), Table 3 / Fig. 5
//! (weak scaling, `n/p = 256`), §5.4 (`T1`), Fig. 2/3 qualitative
//! descriptions. Times are seconds. One obvious typo in Table 2 is
//! corrected: Blocked-CB, MD, `b = 1024` prints "1h40m" for the single
//! iteration of a 7h8m projection over 256 iterations — clearly 1m40s.

/// Sequential baseline: `T1(n=256)` seconds (§5.4).
pub const T1_N256_S: f64 = 0.022;
/// Sequential baseline throughput, Gops (§5.4).
pub const T1_GOPS: f64 = 0.762;

/// One Table 2 row: per-sweep/iteration measurements at `n = 262144`.
#[derive(Debug, Clone, Copy)]
pub struct Table2Row {
    /// Solver label as in the paper.
    pub method: &'static str,
    /// "MD" or "PH".
    pub partitioner: &'static str,
    /// Block size.
    pub b: usize,
    /// Iteration count.
    pub iterations: u64,
    /// Measured single-iteration seconds.
    pub single_s: f64,
    /// Projected total seconds.
    pub projected_s: f64,
}

const D: f64 = 86_400.0;
const H: f64 = 3_600.0;
const M: f64 = 60.0;

/// Table 2, all 40 rows.
pub const TABLE2: &[Table2Row] = &[
    // Repeated Squaring, MD
    Table2Row {
        method: "Repeated Squaring",
        partitioner: "MD",
        b: 256,
        iterations: 18432,
        single_s: 45.0,
        projected_s: 9.0 * D + 16.0 * H,
    },
    Table2Row {
        method: "Repeated Squaring",
        partitioner: "MD",
        b: 512,
        iterations: 9216,
        single_s: 143.0,
        projected_s: 15.0 * D + 8.0 * H,
    },
    Table2Row {
        method: "Repeated Squaring",
        partitioner: "MD",
        b: 1024,
        iterations: 4608,
        single_s: 306.0,
        projected_s: 16.0 * D + 8.0 * H,
    },
    Table2Row {
        method: "Repeated Squaring",
        partitioner: "MD",
        b: 2048,
        iterations: 2304,
        single_s: 19.0 * M + 45.0,
        projected_s: 31.0 * D + 15.0 * H,
    },
    Table2Row {
        method: "Repeated Squaring",
        partitioner: "MD",
        b: 4096,
        iterations: 1152,
        single_s: 51.0 * M + 47.0,
        projected_s: 41.0 * D + 10.0 * H,
    },
    // Repeated Squaring, PH
    Table2Row {
        method: "Repeated Squaring",
        partitioner: "PH",
        b: 256,
        iterations: 18432,
        single_s: 44.0,
        projected_s: 9.0 * D + 11.0 * H,
    },
    Table2Row {
        method: "Repeated Squaring",
        partitioner: "PH",
        b: 512,
        iterations: 9216,
        single_s: 127.0,
        projected_s: 13.0 * D + 13.0 * H,
    },
    Table2Row {
        method: "Repeated Squaring",
        partitioner: "PH",
        b: 1024,
        iterations: 4608,
        single_s: 365.0,
        projected_s: 19.0 * D + 12.0 * H,
    },
    Table2Row {
        method: "Repeated Squaring",
        partitioner: "PH",
        b: 2048,
        iterations: 2304,
        single_s: 18.0 * M + 39.0,
        projected_s: 29.0 * D + 21.0 * H,
    },
    Table2Row {
        method: "Repeated Squaring",
        partitioner: "PH",
        b: 4096,
        iterations: 1152,
        single_s: 75.0 * M,
        projected_s: 60.0 * D + 6.0 * H,
    },
    // 2D Floyd-Warshall, MD
    Table2Row {
        method: "2D Floyd-Warshall",
        partitioner: "MD",
        b: 256,
        iterations: 262144,
        single_s: 21.0,
        projected_s: 64.0 * D + 11.0 * H,
    },
    Table2Row {
        method: "2D Floyd-Warshall",
        partitioner: "MD",
        b: 512,
        iterations: 262144,
        single_s: 18.0,
        projected_s: 53.0 * D + 10.0 * H,
    },
    Table2Row {
        method: "2D Floyd-Warshall",
        partitioner: "MD",
        b: 1024,
        iterations: 262144,
        single_s: 17.0,
        projected_s: 51.0 * D + 22.0 * H,
    },
    Table2Row {
        method: "2D Floyd-Warshall",
        partitioner: "MD",
        b: 2048,
        iterations: 262144,
        single_s: 18.0,
        projected_s: 55.0 * D + 7.0 * H,
    },
    Table2Row {
        method: "2D Floyd-Warshall",
        partitioner: "MD",
        b: 4096,
        iterations: 262144,
        single_s: 20.0,
        projected_s: 61.0 * D + 9.0 * H,
    },
    // 2D Floyd-Warshall, PH
    Table2Row {
        method: "2D Floyd-Warshall",
        partitioner: "PH",
        b: 256,
        iterations: 262144,
        single_s: 21.0,
        projected_s: 65.0 * D + 8.0 * H,
    },
    Table2Row {
        method: "2D Floyd-Warshall",
        partitioner: "PH",
        b: 512,
        iterations: 262144,
        single_s: 18.0,
        projected_s: 55.0 * D + 10.0 * H,
    },
    Table2Row {
        method: "2D Floyd-Warshall",
        partitioner: "PH",
        b: 1024,
        iterations: 262144,
        single_s: 16.0,
        projected_s: 49.0 * D + 7.0 * H,
    },
    Table2Row {
        method: "2D Floyd-Warshall",
        partitioner: "PH",
        b: 2048,
        iterations: 262144,
        single_s: 20.0,
        projected_s: 60.0 * D + 3.0 * H,
    },
    Table2Row {
        method: "2D Floyd-Warshall",
        partitioner: "PH",
        b: 4096,
        iterations: 262144,
        single_s: 19.0,
        projected_s: 56.0 * D + 9.0 * H,
    },
    // Blocked-IM, MD
    Table2Row {
        method: "Blocked-IM",
        partitioner: "MD",
        b: 256,
        iterations: 1024,
        single_s: 51.0,
        projected_s: 14.0 * H + 29.0 * M,
    },
    Table2Row {
        method: "Blocked-IM",
        partitioner: "MD",
        b: 512,
        iterations: 512,
        single_s: 71.0,
        projected_s: 10.0 * H + 8.0 * M,
    },
    Table2Row {
        method: "Blocked-IM",
        partitioner: "MD",
        b: 1024,
        iterations: 256,
        single_s: 115.0,
        projected_s: 8.0 * H + 12.0 * M,
    },
    Table2Row {
        method: "Blocked-IM",
        partitioner: "MD",
        b: 2048,
        iterations: 128,
        single_s: 3.0 * M + 44.0,
        projected_s: 7.0 * H + 59.0 * M,
    },
    Table2Row {
        method: "Blocked-IM",
        partitioner: "MD",
        b: 4096,
        iterations: 64,
        single_s: 7.0 * M + 21.0,
        projected_s: 7.0 * H + 51.0 * M,
    },
    // Blocked-IM, PH
    Table2Row {
        method: "Blocked-IM",
        partitioner: "PH",
        b: 256,
        iterations: 1024,
        single_s: 48.0,
        projected_s: 13.0 * H + 32.0 * M,
    },
    Table2Row {
        method: "Blocked-IM",
        partitioner: "PH",
        b: 512,
        iterations: 512,
        single_s: 74.0,
        projected_s: 10.0 * H + 33.0 * M,
    },
    Table2Row {
        method: "Blocked-IM",
        partitioner: "PH",
        b: 1024,
        iterations: 256,
        single_s: 132.0,
        projected_s: 9.0 * H + 23.0 * M,
    },
    Table2Row {
        method: "Blocked-IM",
        partitioner: "PH",
        b: 2048,
        iterations: 128,
        single_s: 4.0 * M + 3.0,
        projected_s: 8.0 * H + 39.0 * M,
    },
    Table2Row {
        method: "Blocked-IM",
        partitioner: "PH",
        b: 4096,
        iterations: 64,
        single_s: 8.0 * M + 49.0,
        projected_s: 9.0 * H + 24.0 * M,
    },
    // Blocked-CB, MD
    Table2Row {
        method: "Blocked-CB",
        partitioner: "MD",
        b: 256,
        iterations: 1024,
        single_s: 48.0,
        projected_s: 13.0 * H + 35.0 * M,
    },
    Table2Row {
        method: "Blocked-CB",
        partitioner: "MD",
        b: 512,
        iterations: 512,
        single_s: 61.0,
        projected_s: 8.0 * H + 40.0 * M,
    },
    Table2Row {
        method: "Blocked-CB",
        partitioner: "MD",
        b: 1024,
        iterations: 256,
        single_s: 100.0,
        projected_s: 7.0 * H + 8.0 * M,
    },
    Table2Row {
        method: "Blocked-CB",
        partitioner: "MD",
        b: 2048,
        iterations: 128,
        single_s: 3.0 * M + 18.0,
        projected_s: 7.0 * H + 4.0 * M,
    },
    Table2Row {
        method: "Blocked-CB",
        partitioner: "MD",
        b: 4096,
        iterations: 64,
        single_s: 8.0 * M + 23.0,
        projected_s: 8.0 * H + 57.0 * M,
    },
    // Blocked-CB, PH
    Table2Row {
        method: "Blocked-CB",
        partitioner: "PH",
        b: 256,
        iterations: 1024,
        single_s: 46.0,
        projected_s: 13.0 * H + 12.0 * M,
    },
    Table2Row {
        method: "Blocked-CB",
        partitioner: "PH",
        b: 512,
        iterations: 512,
        single_s: 63.0,
        projected_s: 9.0 * H + 4.0 * M,
    },
    Table2Row {
        method: "Blocked-CB",
        partitioner: "PH",
        b: 1024,
        iterations: 256,
        single_s: 111.0,
        projected_s: 7.0 * H + 54.0 * M,
    },
    Table2Row {
        method: "Blocked-CB",
        partitioner: "PH",
        b: 2048,
        iterations: 128,
        single_s: 3.0 * M + 51.0,
        projected_s: 8.0 * H + 15.0 * M,
    },
    Table2Row {
        method: "Blocked-CB",
        partitioner: "PH",
        b: 4096,
        iterations: 64,
        single_s: 9.0 * M + 23.0,
        projected_s: 10.0 * H + 2.0 * M,
    },
];

/// One Table 3 / Fig. 5 weak-scaling entry (`n = 256·p`).
#[derive(Debug, Clone, Copy)]
pub struct Table3Entry {
    /// Core count.
    pub p: usize,
    /// Blocked-IM seconds (`None` = out of local storage) and block size.
    pub im: Option<(f64, usize)>,
    /// Blocked-CB seconds and block size.
    pub cb: (f64, usize),
    /// FW-2D-GbE seconds (`None` = not run: non-square grid).
    pub fw2d_mpi: Option<f64>,
    /// DC-GbE seconds.
    pub dc_mpi: Option<f64>,
}

/// Table 3, all five columns.
pub const TABLE3: &[Table3Entry] = &[
    Table3Entry {
        p: 64,
        im: Some((4.0 * M + 2.0, 1024)),
        cb: (2.0 * M + 50.0, 1024),
        fw2d_mpi: Some(2.0 * M + 3.0),
        dc_mpi: Some(M + 15.0),
    },
    Table3Entry {
        p: 128,
        im: Some((14.0 * M + 20.0, 1024)),
        cb: (11.0 * M, 1280),
        fw2d_mpi: None,
        dc_mpi: None,
    },
    Table3Entry {
        p: 256,
        im: Some((35.0 * M + 33.0, 1536)),
        cb: (34.0 * M + 16.0, 1536),
        fw2d_mpi: Some(37.0 * M + 2.0),
        dc_mpi: Some(18.0 * M + 54.0),
    },
    Table3Entry {
        p: 512,
        im: Some((2.0 * H + 17.0 * M, 2048)),
        cb: (2.0 * H + 11.0 * M, 2048),
        fw2d_mpi: None,
        dc_mpi: None,
    },
    Table3Entry {
        p: 1024,
        im: None,
        cb: (8.0 * H + 9.0 * M, 2560),
        fw2d_mpi: Some(11.0 * H + 51.0 * M),
        dc_mpi: Some(2.0 * H + 52.0 * M),
    },
];

/// Paper Fig. 2 anchor points (sequential kernels), `(b, seconds)` —
/// approximate reads off the published plot, used only for trend checks.
pub const FIG2_FW_ANCHORS: &[(usize, f64)] = &[
    (2000, 11.0),
    (4000, 90.0),
    (6000, 300.0),
    (8000, 700.0),
    (10000, 1380.0),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_is_complete() {
        assert_eq!(TABLE2.len(), 40);
        for method in [
            "Repeated Squaring",
            "2D Floyd-Warshall",
            "Blocked-IM",
            "Blocked-CB",
        ] {
            for part in ["MD", "PH"] {
                let rows: Vec<_> = TABLE2
                    .iter()
                    .filter(|r| r.method == method && r.partitioner == part)
                    .collect();
                assert_eq!(rows.len(), 5, "{method}/{part}");
                // Iterations halve as b doubles for RS/IM/CB; constant for FW2D.
                for w in rows.windows(2) {
                    assert!(w[0].b < w[1].b);
                }
            }
        }
    }

    #[test]
    fn projections_consistent_with_single_iteration() {
        // The paper's own consistency: projected ≈ iterations × single
        // (within rounding of the printed table — allow 15%).
        for r in TABLE2 {
            let implied = r.single_s * r.iterations as f64;
            let ratio = implied / r.projected_s;
            assert!(
                (0.8..1.25).contains(&ratio),
                "{}/{} b={}: single×iters {} vs projected {} (ratio {ratio:.2})",
                r.method,
                r.partitioner,
                r.b,
                implied,
                r.projected_s
            );
        }
    }

    #[test]
    fn table3_weak_scaling_shape() {
        // CB grows with p (weak scaling of an O(n³) kernel: time ∝ n³/p = 256³·p²).
        for w in TABLE3.windows(2) {
            assert!(w[1].cb.0 > w[0].cb.0);
        }
        // DC always beats CB where reported.
        for e in TABLE3 {
            if let Some(dc) = e.dc_mpi {
                assert!(dc < e.cb.0, "p={}", e.p);
            }
        }
        // IM absent at p=1024 (out of storage).
        assert!(TABLE3.last().unwrap().im.is_none());
    }
}
