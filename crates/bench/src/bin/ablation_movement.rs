//! DESIGN.md ablation: shuffle dissemination (Blocked-IM) vs side-channel
//! collect/broadcast (Blocked-CB) data movement, measured on real runs.
//!
//! This regenerates the paper's core systems claim in measurable form: the
//! blocked algorithm's Phase-1/2 results can be disseminated either by
//! copy shuffles (pure, heavy) or through the driver + shared storage
//! (impure, light). The engine metrics expose exactly how much data each
//! route moves, across block sizes.

use apsp_bench::{write_json, HarnessArgs, TextTable};
use apsp_core::{ApspSolver, BlockedCollectBroadcast, BlockedInMemory, SolverConfig};
use serde::Serialize;
use sparklet::{SparkConfig, SparkContext};

#[derive(Serialize)]
struct AblationRow {
    b: usize,
    q: usize,
    im_shuffle_mb: f64,
    im_shuffle_records: u64,
    cb_shuffle_mb: f64,
    cb_side_channel_mb: f64,
    movement_ratio_im_over_cb: f64,
}

fn main() {
    let args = HarnessArgs::parse();
    let n = if args.quick { 128 } else { 256 };
    let cores = std::thread::available_parallelism().map_or(4, |p| p.get().min(8));
    let g = apsp_graph::generators::erdos_renyi_paper(n, 0.1, 0xAB1A7E);
    let adj = g.to_dense();

    println!("== ablation: dissemination route (IM shuffles vs CB side channel), n = {n} ==\n");
    let mut table = TextTable::new(&[
        "b",
        "q",
        "IM shuffle MB",
        "IM records",
        "CB shuffle MB",
        "CB side-ch MB",
        "IM/CB movement",
    ]);
    let mut rows = Vec::new();
    for b in [n / 16, n / 8, n / 4] {
        let q = n.div_ceil(b);

        let ctx = SparkContext::new(SparkConfig::with_cores(cores));
        let im = BlockedInMemory
            .solve(&ctx, &adj, &SolverConfig::new(b).without_validation())
            .expect("IM failed");

        let ctx2 = SparkContext::new(SparkConfig::with_cores(cores));
        let cb = BlockedCollectBroadcast
            .solve(&ctx2, &adj, &SolverConfig::new(b).without_validation())
            .expect("CB failed");

        let im_move = im.metrics.total_movement_bytes() as f64;
        let cb_move = cb.metrics.total_movement_bytes() as f64;
        let row = AblationRow {
            b,
            q,
            im_shuffle_mb: im.metrics.shuffle_bytes as f64 / 1e6,
            im_shuffle_records: im.metrics.shuffle_records,
            cb_shuffle_mb: cb.metrics.shuffle_bytes as f64 / 1e6,
            cb_side_channel_mb: (cb.metrics.side_channel_bytes_written
                + cb.metrics.side_channel_bytes_read) as f64
                / 1e6,
            movement_ratio_im_over_cb: im_move / cb_move,
        };
        table.row(vec![
            b.to_string(),
            q.to_string(),
            format!("{:.1}", row.im_shuffle_mb),
            row.im_shuffle_records.to_string(),
            format!("{:.1}", row.cb_shuffle_mb),
            format!("{:.1}", row.cb_side_channel_mb),
            format!("{:.2}×", row.movement_ratio_im_over_cb),
        ]);
        rows.push(row);
    }
    println!("{}", table.render());
    println!("paper claim: \"by leveraging collect and broadcast operations performed via");
    println!("auxiliary storage we are able to push the size of the problems we can solve\"");
    println!("— the IM/CB movement ratio above is that claim, quantified per block size.");

    if let Ok(path) = write_json("ablation_movement", &rows) {
        println!("\nwrote {}", path.display());
    }
}
