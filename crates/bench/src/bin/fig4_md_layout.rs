//! Figure 4: the data layout induced by the multi-diagonal partitioner —
//! "blocks with the same index are assigned to the same RDD partition".
//!
//! Renders the block → partition assignment grid for a small `q` (like
//! the paper's diagram) and checks the stated properties (balance, cross
//! spreading) at paper scale.

use apsp_bench::{write_json, TextTable};
use apsp_cluster::{partition_load_histogram, skew_factor, PartitionerKind};
use serde::Serialize;
use sparklet::partitioner::{MultiDiagonalPartitioner, Partitioner};

#[derive(Serialize)]
struct LayoutSummary {
    q: usize,
    partitions: usize,
    md_skew: f64,
    ph_skew: f64,
}

fn main() {
    // The diagram: q = 8 blocks into 4 partitions (upper triangle stored).
    let q = 8usize;
    let parts = 4usize;
    let md = MultiDiagonalPartitioner::new(q, parts);
    println!("== Figure 4: multi-diagonal partitioner layout (q = {q}, {parts} partitions) ==\n");
    let mut table = TextTable::new(
        &std::iter::once("I\\J".to_string())
            .chain((0..q).map(|j| j.to_string()))
            .collect::<Vec<_>>()
            .iter()
            .map(String::as_str)
            .collect::<Vec<_>>(),
    );
    for i in 0..q {
        let mut row = vec![i.to_string()];
        for j in 0..q {
            row.push(if j < i {
                "·".into() // mirrored from the upper triangle
            } else {
                md.partition(&(i, j)).to_string()
            });
        }
        table.row(row);
    }
    println!("{}", table.render());
    println!("(· = served by the transposed upper-triangular block, same partition)\n");

    // The paper's two stated properties, at paper scale.
    let q_paper = 256;
    let parts_paper = 2048;
    let hist = partition_load_histogram(PartitionerKind::MultiDiagonal, q_paper, parts_paper);
    let (min, max) = (
        hist.iter().min().copied().unwrap(),
        hist.iter().max().copied().unwrap(),
    );
    println!("paper scale (q = {q_paper}, P = {parts_paper}):");
    println!("  equal distribution: partition loads in [{min}, {max}] blocks (±1 by construction)");
    let md_skew = skew_factor(PartitionerKind::MultiDiagonal, q_paper, parts_paper);
    let ph_skew = skew_factor(PartitionerKind::PortableHash, q_paper, parts_paper);
    println!("  skew (max/mean): MD {md_skew:.3} vs portable_hash {ph_skew:.3}");
    for pivot in [0usize, 3, 7] {
        let distinct: std::collections::HashSet<usize> = (0..q)
            .map(|t| md.partition(&(t.min(pivot), t.max(pivot))))
            .collect();
        println!(
            "  cross of pivot {pivot} (q = {q}): {} blocks over {} distinct partitions",
            q,
            distinct.len()
        );
    }

    let summary = LayoutSummary {
        q: q_paper,
        partitions: parts_paper,
        md_skew,
        ph_skew,
    };
    if let Ok(path) = write_json("fig4_md_layout", &summary) {
        println!("\nwrote {}", path.display());
    }
}
