//! Figure 3 (bottom): distribution of RDD partition sizes under the
//! multi-diagonal vs portable-hash partitioners, `B = 2`.
//!
//! Two views are produced:
//!
//! 1. the paper-scale *assignment* histogram (n = 131072, p = 1024,
//!    B = 2) computed from the actual partitioner implementations, and
//! 2. a real engine run at small scale, reading partition sizes back from
//!    materialized RDDs (validating that the engine places records where
//!    the partitioner says).

use apsp_bench::{write_json, TextTable};
use apsp_cluster::{partition_load_histogram, PartitionerKind};
use apsp_core::{BlockedMatrix, PartitionerChoice};
use serde::Serialize;
use sparklet::{SparkConfig, SparkContext};

#[derive(Serialize)]
struct SkewRow {
    b: usize,
    q: usize,
    md_max: usize,
    md_mean: f64,
    ph_max: usize,
    ph_mean: f64,
    ph_empty: usize,
}

fn main() {
    let n: usize = 131_072;
    let p = 1024;
    let partitions = 2 * p;

    println!("== Figure 3 (bottom): partition-size distribution, n = {n}, p = {p}, B = 2 ==\n");
    let mut table = TextTable::new(&[
        "b",
        "q",
        "MD max",
        "MD mean",
        "PH max",
        "PH mean",
        "PH empty parts",
    ]);
    let mut rows = Vec::new();
    for b in [512usize, 768, 1024, 1280, 1536, 1792, 2048] {
        let q = n.div_ceil(b);
        let md = partition_load_histogram(PartitionerKind::MultiDiagonal, q, partitions);
        let ph = partition_load_histogram(PartitionerKind::PortableHash, q, partitions);
        let blocks = (q * (q + 1) / 2) as f64;
        let mean = blocks / partitions as f64;
        let row = SkewRow {
            b,
            q,
            md_max: *md.iter().max().unwrap(),
            md_mean: mean,
            ph_max: *ph.iter().max().unwrap(),
            ph_mean: mean,
            ph_empty: ph.iter().filter(|&&c| c == 0).count(),
        };
        table.row(vec![
            b.to_string(),
            q.to_string(),
            row.md_max.to_string(),
            format!("{mean:.2}"),
            row.ph_max.to_string(),
            format!("{mean:.2}"),
            row.ph_empty.to_string(),
        ]);
        rows.push(row);
    }
    println!("{}", table.render());
    println!(
        "paper shape: PH consistently overloads some partitions (XOR tuple-hash \
         collisions on upper-triangular keys) while MD stays within ±1 block.\n"
    );

    // Real engine validation at small scale.
    let ctx = SparkContext::new(SparkConfig::with_cores(4));
    let g = apsp_graph::generators::erdos_renyi_paper(256, 0.1, 0xBEEF);
    let adj = g.to_dense();
    let q = 256usize.div_ceil(16);
    let parts = 32;
    println!("-- engine-measured partition sizes (n = 256, b = 16, {parts} partitions) --");
    for choice in [
        PartitionerChoice::MultiDiagonal,
        PartitionerChoice::PortableHash,
    ] {
        let bm = BlockedMatrix::from_matrix(&ctx, &adj, 16, choice.build(q, parts));
        let sizes = bm.rdd.partition_sizes().expect("engine run failed");
        let max = sizes.iter().max().copied().unwrap_or(0);
        let empty = sizes.iter().filter(|&&s| s == 0).count();
        let mean = sizes.iter().sum::<usize>() as f64 / sizes.len() as f64;
        println!("{choice:?}: max {max}, mean {mean:.2}, empty {empty}");
    }

    if let Ok(path) = write_json("fig3_partition_skew", &rows) {
        println!("\nwrote {}", path.display());
    }
}
