//! `BENCH_kernels.json` emitter: point 0 of the kernel-engine perf
//! trajectory.
//!
//! Times every min-plus kernel variant (and the in-place Floyd-Warshall)
//! across block sides and records GFLOP-equivalent rates (one add + one
//! min per inner step, `2·b³` ops per product) to
//! `results/BENCH_kernels.json`, so later PRs can diff kernel performance
//! against a committed baseline instead of folklore.
//!
//! Usage: `cargo run --release -p apsp-bench --bin bench_kernels
//! [--quick]`. `--quick` restricts to small sides (CI-friendly); the
//! committed baseline is produced by a full run.

use apsp_bench::{HarnessArgs, TextTable};
use apsp_blockmat::kernels::{self, MinPlusKernel};
use apsp_blockmat::{
    AlgBlock, Block, BoolSemiring, BottleneckF64, ElemBlock, Offsets, ParentBlock, PathAlgebra,
    Reachability, Widest,
};
use std::time::Instant;

/// Generic-loop twin of [`Widest`]: same semiring, no hook overrides, so
/// every operation runs the `PathAlgebra` default element-wise loops.
/// The `fallback` rows time this shim — the pre-specialization behavior —
/// rather than the specialized engines' `Naive` oracles, which share the
/// engines' data layout (and, for booleans, short-circuit the inner fold).
#[derive(Debug, Clone, Copy, Default)]
struct FallbackWidest;

impl PathAlgebra for FallbackWidest {
    type Semi = BottleneckF64;
    type Payload = ();
    const TRACKS: bool = false;
    const NAME: &'static str = "bottleneck-fallback";

    fn empty_payload() {}
    fn payload_for(_k_global: usize) {}
}

/// Generic-loop twin of [`Reachability`]; see [`FallbackWidest`].
#[derive(Debug, Clone, Copy, Default)]
struct FallbackReach;

impl PathAlgebra for FallbackReach {
    type Semi = BoolSemiring;
    type Payload = ();
    const TRACKS: bool = false;
    const NAME: &'static str = "boolean-fallback";

    fn empty_payload() {}
    fn payload_for(_k_global: usize) {}
}

/// Timed samples per (kernel, side) point; the best is recorded.
const SAMPLES: usize = 3;

#[derive(serde::Serialize)]
struct KernelPoint {
    kernel: String,
    side: usize,
    seconds: f64,
    gflops_equiv: f64,
    speedup_vs_tiled: f64,
}

#[derive(serde::Serialize)]
struct TrackedPoint {
    kernel: String,
    side: usize,
    seconds: f64,
    gflops_equiv: f64,
    /// Tracked time over the auto-dispatched *untracked* kernel for the
    /// same side — the price of recording argmins.
    overhead_vs_untracked: f64,
}

#[derive(serde::Serialize)]
struct AlgebraPoint {
    algebra: String,
    /// Which tier the row timed: `fallback` (the generic `PathAlgebra`
    /// default loops, via a shim algebra with no hook overrides) or the
    /// specialized engine Auto dispatches to (the packed (max, min) tier
    /// / the bitset tier).
    kernel: String,
    side: usize,
    seconds: f64,
    gops_equiv: f64,
    /// Fallback-loop time over this row's time for the same algebra and
    /// side (1.0 on the fallback rows themselves) — the payoff of the
    /// specialized tier.
    speedup_vs_fallback: f64,
    /// This row's time over the packed tropical fold at the same side —
    /// how close the algebra runs to the (min, +) flagship.
    slowdown_vs_tropical: f64,
}

#[derive(serde::Serialize)]
struct Baseline {
    description: &'static str,
    ops_model: &'static str,
    samples: usize,
    minplus: Vec<KernelPoint>,
    /// Tracked (argmin-recording) kernel tier, PR 3.
    tracked: Vec<TrackedPoint>,
    /// Non-tropical path algebras, PR 6: bottleneck (max, min) and
    /// boolean (∨, ∧) fold-products, each timed on the generic fallback
    /// loop and on its specialized tier (packed (max, min) / bitset).
    algebra: Vec<AlgebraPoint>,
    floyd_warshall: Vec<KernelPoint>,
}

fn dense_block(b: usize, seed: usize) -> Block {
    Block::from_fn(b, |i, j| {
        if i == j {
            0.0
        } else {
            1.0 + ((i * 31 + j * 17 + seed) % 97) as f64
        }
    })
}

fn best_of<F: FnMut()>(mut f: F) -> f64 {
    f(); // warmup
    let mut best = f64::INFINITY;
    for _ in 0..SAMPLES {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let args = HarnessArgs::parse();
    let sides: &[usize] = if args.quick {
        &[64, 128, 256]
    } else {
        &[64, 128, 256, 512, 1024]
    };
    // Tiled first: it is the pre-engine baseline every speedup is
    // computed against.
    let variants: [(MinPlusKernel, &str); 5] = [
        (MinPlusKernel::Tiled, "tiled"),
        (MinPlusKernel::Naive, "naive"),
        (MinPlusKernel::Branchless, "branchless"),
        (MinPlusKernel::Packed, "packed"),
        (MinPlusKernel::Parallel, "parallel"),
    ];

    let mut minplus = Vec::new();
    let mut table = TextTable::new(&["side", "kernel", "time", "GFLOP-eq/s", "vs tiled"]);
    for &b in sides {
        let a = dense_block(b, 2);
        let x = dense_block(b, 3);
        let mut c = Block::infinity(b);
        let ops = 2.0 * (b as f64).powi(3);
        let mut tiled_secs = f64::NAN;
        for (kernel, name) in variants {
            if kernel == MinPlusKernel::Naive && b > 256 {
                continue; // minutes per sample; the oracle is not a contender
            }
            let secs = best_of(|| {
                c.data_mut().fill(apsp_blockmat::INF);
                kernels::min_plus_into_with(kernel, &a, &x, &mut c);
            });
            if kernel == MinPlusKernel::Tiled {
                tiled_secs = secs;
            }
            let speedup = tiled_secs / secs;
            minplus.push(KernelPoint {
                kernel: name.into(),
                side: b,
                seconds: secs,
                gflops_equiv: ops / secs / 1e9,
                speedup_vs_tiled: speedup,
            });
            table.row(vec![
                b.to_string(),
                name.into(),
                format!("{:.3}ms", secs * 1e3),
                format!("{:.2}", ops / secs / 1e9),
                if speedup.is_nan() {
                    "—".into()
                } else {
                    format!("{speedup:.2}×")
                },
            ]);
        }
    }

    // Tracked (argmin-recording) tier: time the tracked auto-dispatch and
    // the explicit tracked loops against the untracked auto-dispatch.
    let mut tracked = Vec::new();
    let mut ttable = TextTable::new(&["side", "kernel", "time", "GFLOP-eq/s", "overhead"]);
    let tracked_variants: [(MinPlusKernel, &str); 2] = [
        (MinPlusKernel::Branchless, "tracked-rows"),
        (MinPlusKernel::Tiled, "tracked-tiled"),
    ];
    for &b in sides {
        let a = dense_block(b, 2);
        let x = dense_block(b, 3);
        let mut c = Block::infinity(b);
        let ops = 2.0 * (b as f64).powi(3);
        // Disjoint global ranges: no degenerate-term guard fires, so this
        // times the pure tracking overhead of the inner loops.
        let offsets = Offsets {
            k: 4 * b,
            row: 0,
            col: 9 * b,
        };
        let untracked_secs = best_of(|| {
            c.data_mut().fill(apsp_blockmat::INF);
            kernels::min_plus_into_with(MinPlusKernel::Auto, &a, &x, &mut c);
        });
        let mut via = ParentBlock::none(b);
        for (kernel, name) in tracked_variants {
            let secs = best_of(|| {
                c.data_mut().fill(apsp_blockmat::INF);
                via.data_mut().fill(apsp_blockmat::NO_VIA);
                kernels::min_plus_into_tracked_with(kernel, &a, &x, &mut c, &mut via, offsets);
            });
            let overhead = secs / untracked_secs;
            tracked.push(TrackedPoint {
                kernel: name.into(),
                side: b,
                seconds: secs,
                gflops_equiv: ops / secs / 1e9,
                overhead_vs_untracked: overhead,
            });
            ttable.row(vec![
                b.to_string(),
                name.into(),
                format!("{:.3}ms", secs * 1e3),
                format!("{:.2}", ops / secs / 1e9),
                format!("{overhead:.2}×"),
            ]);
        }
    }

    // Non-tropical path algebras: each fold-product timed twice — on the
    // generic fallback loops (via the no-override shim algebras above)
    // and on the specialized tier Auto now dispatches to (the packed
    // (max, min) engine / the bitset engine). The pair quantifies the
    // specialized tier's payoff and how close each algebra runs to the
    // packed tropical flagship.
    let mut algebra = Vec::new();
    let mut atable = TextTable::new(&[
        "side",
        "algebra",
        "kernel",
        "time",
        "GOP-eq/s",
        "vs fallback",
        "vs tropical",
    ]);
    let o0 = Offsets {
        k: 0,
        row: 0,
        col: 0,
    };
    for &b in sides {
        let ops = 2.0 * (b as f64).powi(3);
        let a = dense_block(b, 2);
        let x = dense_block(b, 3);
        let mut c = Block::infinity(b);
        let tropical_secs = best_of(|| {
            c.data_mut().fill(apsp_blockmat::INF);
            kernels::min_plus_into_with(MinPlusKernel::Auto, &a, &x, &mut c);
        });

        let cap = |seed: usize| {
            ElemBlock::<BottleneckF64>::from_fn(b, |i, j| {
                if i == j {
                    f64::INFINITY
                } else {
                    1.0 + ((i * 31 + j * 17 + seed) % 97) as f64
                }
            })
        };
        let (wa, wx) = (cap(2), cap(3));
        // The shim has no overrides, so the kernel argument is inert: any
        // value runs the same generic element-wise loop.
        let mut wf = AlgBlock::<FallbackWidest>::from_dist(ElemBlock::zeros(b));
        let widest_fallback_secs = best_of(|| {
            wf.dist_mut().data_mut().fill(0.0);
            wf.min_plus_into_self(MinPlusKernel::Auto, &wa, &wx, o0);
        });
        let mut wc = AlgBlock::<Widest>::from_dist(ElemBlock::zeros(b));
        let widest_secs = best_of(|| {
            wc.dist_mut().data_mut().fill(0.0);
            wc.min_plus_into_self(MinPlusKernel::Auto, &wa, &wx, o0);
        });
        let maxmin_tier = format!("{:?}", kernels::select_maxmin(b)).to_lowercase();

        // Fully dense operands, like the capacity blocks above: the
        // generic loop's `0̄`-skip elides whole inner rows on sparse
        // inputs, which would flatter the measured rate — these rows
        // must charge 2·b³ op-equivalents to 2·b³ executed ops.
        let bools = |_seed: usize| ElemBlock::<BoolSemiring>::filled(b, true);
        let (ba, bx) = (bools(2), bools(3));
        let mut bf = AlgBlock::<FallbackReach>::from_dist(ElemBlock::zeros(b));
        let bool_fallback_secs = best_of(|| {
            bf.dist_mut().data_mut().fill(false);
            bf.min_plus_into_self(MinPlusKernel::Auto, &ba, &bx, o0);
        });
        let mut bc = AlgBlock::<Reachability>::from_dist(ElemBlock::zeros(b));
        let bool_secs = best_of(|| {
            bc.dist_mut().data_mut().fill(false);
            bc.min_plus_into_self(MinPlusKernel::Auto, &ba, &bx, o0);
        });

        for (name, kernel, secs, fallback_secs) in [
            (
                "bottleneck",
                "fallback",
                widest_fallback_secs,
                widest_fallback_secs,
            ),
            (
                "bottleneck",
                maxmin_tier.as_str(),
                widest_secs,
                widest_fallback_secs,
            ),
            (
                "boolean",
                "fallback",
                bool_fallback_secs,
                bool_fallback_secs,
            ),
            ("boolean", "bitset", bool_secs, bool_fallback_secs),
        ] {
            algebra.push(AlgebraPoint {
                algebra: name.into(),
                kernel: kernel.into(),
                side: b,
                seconds: secs,
                gops_equiv: ops / secs / 1e9,
                speedup_vs_fallback: fallback_secs / secs,
                slowdown_vs_tropical: secs / tropical_secs,
            });
            atable.row(vec![
                b.to_string(),
                name.into(),
                kernel.into(),
                format!("{:.3}ms", secs * 1e3),
                format!("{:.2}", ops / secs / 1e9),
                format!("{:.2}×", fallback_secs / secs),
                format!("{:.2}×", secs / tropical_secs),
            ]);
        }
    }

    let mut floyd_warshall = Vec::new();
    for &b in sides {
        let base = dense_block(b, 1);
        let mut blk = base.clone();
        let ops = 2.0 * (b as f64).powi(3);
        let secs = best_of(|| {
            blk.data_mut().copy_from_slice(base.data());
            kernels::floyd_warshall_in_place(&mut blk);
        });
        floyd_warshall.push(KernelPoint {
            kernel: "fw_in_place".into(),
            side: b,
            seconds: secs,
            gflops_equiv: ops / secs / 1e9,
            speedup_vs_tiled: f64::NAN,
        });
    }

    println!("min-plus kernel engine rates (fold c = min(c, a ⊗ b)):\n");
    print!("{}", table.render());
    println!("\ntracked (argmin-recording) kernels, overhead vs untracked auto-dispatch:\n");
    print!("{}", ttable.render());
    println!("\npath-algebra tiers, fallback loop vs specialized kernel (fold c = c ⊕ (a ⊗ b)):\n");
    print!("{}", atable.render());
    println!("\nFloyd-Warshall in place:");
    for p in &floyd_warshall {
        println!(
            "  b={:<5} {:>10.3}ms  {:.2} GFLOP-eq/s",
            p.side,
            p.seconds * 1e3,
            p.gflops_equiv
        );
    }

    // Tiled speedups as NaN serialize to null; sanitize for JSON.
    let sanitize = |points: Vec<KernelPoint>| -> Vec<KernelPoint> {
        points
            .into_iter()
            .map(|mut p| {
                if !p.speedup_vs_tiled.is_finite() {
                    p.speedup_vs_tiled = 1.0;
                }
                p
            })
            .collect()
    };
    let baseline = Baseline {
        description: "Kernel-engine perf trajectory: min-plus product and in-place \
                      Floyd-Warshall rates per kernel tier, the tracked \
                      (argmin-recording) tier's overhead, and the non-tropical \
                      algebras (bottleneck/boolean) on their fallback loops vs \
                      the packed (max, min) and bitset tiers",
        ops_model: "2*b^3 flop-equivalents per product (one add + one min per inner step)",
        samples: SAMPLES,
        minplus: sanitize(minplus),
        tracked,
        algebra,
        floyd_warshall: sanitize(floyd_warshall),
    };
    match apsp_bench::write_json("BENCH_kernels", &baseline) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("failed to write BENCH_kernels.json: {e}"),
    }
}
