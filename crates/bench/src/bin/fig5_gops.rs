//! Figure 5: weak-scaling throughput in Gops/core (`n³ / (T · p) / 10⁹`)
//! for the blocked Spark solvers and the MPI baselines, against the
//! sequential reference (0.762 Gops).

use apsp_bench::{paper, write_json, HarnessArgs, TextTable};
use apsp_cluster::{project, ClusterSpec, SolverKind, SparkOverheads, Workload};
use apsp_core::tuner::{paper_candidates, tune_with_model};
use serde::Serialize;

#[derive(Serialize)]
struct GopsRow {
    p: usize,
    im: Option<f64>,
    cb: f64,
    fw2d_mpi: f64,
    dc_mpi: f64,
    paper_cb: f64,
}

fn main() {
    let args = HarnessArgs::parse();
    let rates = args.rates();
    let ov = SparkOverheads::default();

    println!("== Figure 5: Gops/core (weak scaling, n/p = 256) ==");
    println!("sequential reference: {:.3} Gops/core\n", paper::T1_GOPS);

    let mut table = TextTable::new(&["p", "IM", "CB", "FW-2D-MPI", "DC-MPI", "paper CB"]);
    let mut rows = Vec::new();
    for entry in paper::TABLE3 {
        let p = entry.p;
        let n = 256 * p;
        let spec = ClusterSpec::paper_cluster_with_cores(p);
        let gops = |total_s: f64| (n as f64).powi(3) / total_s / p as f64 / 1e9;

        let im = tune_with_model(
            SolverKind::BlockedInMemory,
            n,
            &spec,
            &rates,
            &ov,
            &paper_candidates(),
        )
        .map(|(_, pr)| gops(pr.total_s));
        let (cb_b, cb) = tune_with_model(
            SolverKind::BlockedCollectBroadcast,
            n,
            &spec,
            &rates,
            &ov,
            &paper_candidates(),
        )
        .expect("CB feasible");
        let w = Workload::paper_default(n, cb_b);
        let fw = gops(project(SolverKind::MpiFw2d, &w, &spec, &rates, &ov).total_s);
        let dc = gops(project(SolverKind::MpiDc, &w, &spec, &rates, &ov).total_s);
        let cbg = gops(cb.total_s);
        let paper_cb = (n as f64).powi(3) / entry.cb.0 / p as f64 / 1e9;

        table.row(vec![
            p.to_string(),
            im.map_or("—".into(), |g| format!("{g:.2}")),
            format!("{cbg:.2}"),
            format!("{fw:.2}"),
            format!("{dc:.2}"),
            format!("{paper_cb:.2}"),
        ]);
        rows.push(GopsRow {
            p,
            im,
            cb: cbg,
            fw2d_mpi: fw,
            dc_mpi: dc,
            paper_cb,
        });
    }
    println!("{}", table.render());
    println!("paper shape: DC-MPI on top (~1.5–2 Gops/core at scale); CB saturates near");
    println!("~78% of the sequential rate at p = 1024; naive FW-2D-MPI degrades with p.");

    if let Ok(path) = write_json("fig5_gops", &rows) {
        println!("\nwrote {}", path.display());
    }
}
