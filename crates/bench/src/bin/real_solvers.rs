//! Scaled-down *real* execution of all six solvers on this machine:
//! correctness cross-check plus the qualitative ordering and data-movement
//! profile the paper reports, observed on live runs rather than the model.

use apsp_bench::{write_json, HarnessArgs, TextTable};
use apsp_core::{
    ApspSolver, BlockedCollectBroadcast, BlockedInMemory, FloydWarshall2D, MpiDcApsp, MpiFw2d,
    RepeatedSquaring, SolverConfig,
};
use serde::Serialize;
use sparklet::{SparkConfig, SparkContext};
use std::time::Instant;

#[derive(Serialize)]
struct RealRow {
    solver: String,
    seconds: f64,
    iterations: u64,
    jobs: u64,
    shuffles: u64,
    shuffle_mb: f64,
    side_channel_mb: f64,
    broadcast_mb: f64,
}

fn main() {
    let args = HarnessArgs::parse();
    let n = if args.quick { 128 } else { 256 };
    let b = n / 8;
    let cores = std::thread::available_parallelism().map_or(4, |p| p.get().min(8));

    let g = apsp_graph::generators::erdos_renyi_paper(n, 0.1, 0xC0FFEE);
    let adj = g.to_dense();
    let oracle = apsp_graph::floyd_warshall(&g);

    println!("== real execution, n = {n}, b = {b}, {cores} cores ==\n");
    let mut table = TextTable::new(&[
        "solver",
        "time",
        "iters",
        "jobs",
        "shuffles",
        "shuffle MB",
        "side-ch MB",
        "bcast MB",
    ]);
    let mut rows = Vec::new();

    let spark_solvers: Vec<(&str, Box<dyn ApspSolver>)> = vec![
        ("Repeated Squaring", Box::new(RepeatedSquaring)),
        ("2D Floyd-Warshall", Box::new(FloydWarshall2D)),
        ("Blocked-IM", Box::new(BlockedInMemory)),
        ("Blocked-CB", Box::new(BlockedCollectBroadcast)),
    ];
    for (name, solver) in spark_solvers {
        let ctx = SparkContext::new(SparkConfig::with_cores(cores));
        let res = solver
            .solve(&ctx, &adj, &SolverConfig::new(b).without_validation())
            .unwrap_or_else(|e| panic!("{name} failed: {e}"));
        assert!(
            res.distances().approx_eq(&oracle, 1e-9).is_ok(),
            "{name} diverged from the oracle"
        );
        let m = &res.metrics;
        table.row(vec![
            name.into(),
            format!("{:.2}s", res.elapsed.as_secs_f64()),
            res.iterations.to_string(),
            m.jobs.to_string(),
            m.shuffles.to_string(),
            format!("{:.1}", m.shuffle_bytes as f64 / 1e6),
            format!(
                "{:.1}",
                (m.side_channel_bytes_written + m.side_channel_bytes_read) as f64 / 1e6
            ),
            format!("{:.1}", m.broadcast_bytes as f64 / 1e6),
        ]);
        rows.push(RealRow {
            solver: name.into(),
            seconds: res.elapsed.as_secs_f64(),
            iterations: res.iterations,
            jobs: m.jobs,
            shuffles: m.shuffles,
            shuffle_mb: m.shuffle_bytes as f64 / 1e6,
            side_channel_mb: (m.side_channel_bytes_written + m.side_channel_bytes_read) as f64
                / 1e6,
            broadcast_mb: m.broadcast_bytes as f64 / 1e6,
        });
    }

    // MPI baselines.
    let grid = (cores as f64).sqrt().floor().max(1.0) as usize;
    let t0 = Instant::now();
    let fw = MpiFw2d::new(grid)
        .solve_matrix(&adj)
        .expect("FW-2D-MPI failed");
    let fw_t = t0.elapsed().as_secs_f64();
    assert!(fw.distances.approx_eq(&oracle, 1e-9).is_ok());
    table.row(vec![
        format!("FW-2D-MPI ({grid}x{grid})"),
        format!("{fw_t:.2}s"),
        n.to_string(),
        "—".into(),
        "—".into(),
        "—".into(),
        "—".into(),
        "—".into(),
    ]);
    rows.push(RealRow {
        solver: "FW-2D-MPI".into(),
        seconds: fw_t,
        iterations: n as u64,
        jobs: 0,
        shuffles: 0,
        shuffle_mb: 0.0,
        side_channel_mb: 0.0,
        broadcast_mb: 0.0,
    });

    let t1 = Instant::now();
    let dc = MpiDcApsp::new(cores)
        .solve_matrix(&adj)
        .expect("DC-MPI failed");
    let dc_t = t1.elapsed().as_secs_f64();
    assert!(dc.distances.approx_eq(&oracle, 1e-9).is_ok());
    table.row(vec![
        "DC-MPI".into(),
        format!("{dc_t:.2}s"),
        "1".into(),
        "—".into(),
        "—".into(),
        "—".into(),
        "—".into(),
        "—".into(),
    ]);
    rows.push(RealRow {
        solver: "DC-MPI".into(),
        seconds: dc_t,
        iterations: 1,
        jobs: 0,
        shuffles: 0,
        shuffle_mb: 0.0,
        side_channel_mb: 0.0,
        broadcast_mb: 0.0,
    });

    println!("{}", table.render());
    println!("all six solvers validated against the sequential Floyd-Warshall oracle.");
    println!("expected ordering (paper): FW2D pays n sync points; IM moves the most");
    println!("shuffle bytes; CB replaces shuffle volume with side-channel traffic.");

    if let Ok(path) = write_json("real_solvers", &rows) {
        println!("\nwrote {}", path.display());
    }
}
