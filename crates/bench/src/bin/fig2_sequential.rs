//! Figure 2: execution time of the sequential kernels vs block size.
//!
//! The paper's Fig. 2 shows `FloydWarshall` and `MatProd`+`MatMin`
//! (MinPlus) growing as O(b³), with a knee once blocks outgrow cache
//! (≈ b = 1810 for their Skylake L3). This harness measures the real
//! kernels on this machine across a block-size sweep and reports the
//! measured cubic exponent; `--quick` shrinks the sweep.

use apsp_bench::{fmt_duration, write_json, HarnessArgs, TextTable};
use apsp_blockmat::{kernels, Block};
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct Point {
    b: usize,
    fw_s: f64,
    minplus_s: f64,
}

fn dense_block(b: usize, seed: usize) -> Block {
    Block::from_fn(b, |i, j| {
        if i == j {
            0.0
        } else {
            1.0 + ((i * 31 + j * 17 + seed) % 97) as f64
        }
    })
}

fn main() {
    let args = HarnessArgs::parse();
    let sweep: Vec<usize> = if args.quick {
        vec![64, 128, 256, 384]
    } else {
        vec![64, 128, 256, 384, 512, 768, 1024, 1536]
    };

    let mut points = Vec::new();
    let mut table = TextTable::new(&["b", "FloydWarshall", "MinPlus", "fw ns/op", "mp ns/op"]);
    for &b in &sweep {
        let mut fw = dense_block(b, 1);
        let t0 = Instant::now();
        kernels::floyd_warshall_in_place(&mut fw);
        let fw_s = t0.elapsed().as_secs_f64();

        let a = dense_block(b, 2);
        let x = dense_block(b, 3);
        let mut c = Block::infinity(b);
        let t1 = Instant::now();
        // Explicitly packed: this harness measures the *sequential* rate,
        // and auto-dispatch would go rayon-parallel at b >= 1024.
        kernels::min_plus_into_packed(&a, &x, &mut c);
        c.mat_min_assign(&a);
        let mp_s = t1.elapsed().as_secs_f64();

        let ops = (b as f64).powi(3);
        table.row(vec![
            b.to_string(),
            fmt_duration(fw_s),
            fmt_duration(mp_s),
            format!("{:.2}", fw_s / ops * 1e9),
            format!("{:.2}", mp_s / ops * 1e9),
        ]);
        points.push(Point {
            b,
            fw_s,
            minplus_s: mp_s,
        });
    }

    println!("== Figure 2: sequential kernel time vs block size ==");
    println!("{}", table.render());

    // Trend check: fit the growth exponent between consecutive doublings
    // (paper: "runtime increases roughly as O(b^3)").
    let mut exps = Vec::new();
    for w in points.windows(2) {
        let ratio_b = w[1].b as f64 / w[0].b as f64;
        exps.push((w[1].fw_s / w[0].fw_s).ln() / ratio_b.ln());
    }
    let avg = exps.iter().sum::<f64>() / exps.len() as f64;
    println!("measured FloydWarshall growth exponent ≈ {avg:.2} (paper: ~3, pre-knee)");
    if !(2.0..=4.2).contains(&avg) {
        eprintln!("WARNING: growth exponent outside expected cubic band");
    }

    if let Ok(path) = write_json("fig2_sequential", &points) {
        println!("wrote {}", path.display());
    }
}
