//! Dense-vs-hierarchical baseline on a road-network-like graph →
//! `results/BENCH_sparse.json`.
//!
//! The headline number for the sparse frontier: on a ≥20k-vertex
//! `road_grid` the hierarchical partition/stitch path must beat the dense
//! blocked solve by ≥5× wall-clock while staying **bit-equal** to the
//! Dijkstra oracle (road-grid weights are dyadic, so float sums are exact
//! in every relaxation order).
//!
//! Modes:
//!
//! * default — measure the hierarchical solve, verify sampled rows
//!   bit-equal against Dijkstra, reuse a dense timing from
//!   `--dense-only` if one is staged (the dense solve takes ~n³ ≈ 1 h on
//!   one core), measure it inline otherwise, and write the committed
//!   artifact;
//! * `--dense-only` — measure just the dense blocked solve and stage its
//!   timing under `/tmp` for a later default run to pick up;
//! * `--quick` — a CI-sized smoke (48×48 grid): dense + hierarchical +
//!   bit-equality, printed only (the committed baseline is not rewritten).

use apsp_bench::{fmt_duration, write_json, TextTable};
use apsp_core::hierarchy::{HierarchicalClosure, HierarchyConfig};
use apsp_core::plan::{Problem, SolverId};
use apsp_core::{ApspSolver, BlockedCollectBroadcast, SolverConfig};
use apsp_graph::{dijkstra, generators, Graph};
use serde::Serialize;
use sparklet::{SparkConfig, SparkContext};
use std::time::Instant;

const SEED: u64 = 9;
const STAGED_DENSE: &str = "/tmp/bench_sparse_dense_staged.json";

#[derive(Serialize)]
struct DenseLeg {
    solver: &'static str,
    block_size: usize,
    seconds: f64,
    sample_rows_bit_equal_dijkstra: bool,
}

#[derive(Serialize)]
struct HierLeg {
    parts: usize,
    target_part_size: usize,
    boundary_vertices: usize,
    cut_edges: usize,
    seconds: f64,
}

#[derive(Serialize)]
struct SparseBench {
    description: String,
    graph: String,
    n: usize,
    edges: usize,
    density: f64,
    dense: DenseLeg,
    hierarchical: HierLeg,
    speedup: f64,
    verified_sources: usize,
    hierarchical_bit_equal_dijkstra: bool,
    planner_rule: String,
}

fn ctx() -> SparkContext {
    SparkContext::new(SparkConfig::default())
}

fn sample_sources(n: usize) -> Vec<usize> {
    // Deterministic spread: corners, center, and a diagonal sweep.
    let mut s = vec![0, n / 2, n - 1, n / 3, 2 * n / 3, n / 7, 5 * n / 7, n / 13];
    s.sort_unstable();
    s.dedup();
    s
}

/// Dense blocked solve, timed, plus a bit-equality spot check of sampled
/// rows against per-source Dijkstra.
fn run_dense(g: &Graph, sources: &[usize]) -> DenseLeg {
    let sc = ctx();
    let n = g.order();
    let cfg = SolverConfig::auto(n, &sc).without_validation();
    let block_size = cfg.block_size;
    let adj = g.to_dense();
    eprintln!("[dense] solving n = {n} with Blocked-CB, b = {block_size} ...");
    let t0 = Instant::now();
    let res = BlockedCollectBroadcast
        .solve(&sc, &adj, &cfg)
        .expect("dense solve failed");
    let seconds = t0.elapsed().as_secs_f64();
    eprintln!("[dense] done in {}", fmt_duration(seconds));
    let csr = g.to_csr();
    let mut exact = true;
    for &s in sources {
        let oracle = dijkstra::sssp(&csr, s);
        for (t, &expect) in oracle.iter().enumerate() {
            let got = res.distances().get(s, t);
            if got != expect && !(got.is_infinite() && expect.is_infinite()) {
                eprintln!("[dense] row {s}: d({s},{t}) = {got} vs Dijkstra {expect}");
                exact = false;
                break;
            }
        }
    }
    DenseLeg {
        solver: "Blocked Collect/Broadcast (Algorithm 4)",
        block_size,
        seconds,
        sample_rows_bit_equal_dijkstra: exact,
    }
}

/// Hierarchical solve, timed, plus the full sampled-row bit-equality
/// verdict against per-source Dijkstra.
fn run_hier(g: &Graph, sources: &[usize]) -> (HierLeg, bool) {
    let sc = ctx();
    eprintln!("[hier] solving n = {} hierarchically ...", g.order());
    let t0 = Instant::now();
    let h = HierarchicalClosure::solve(&sc, g, &HierarchyConfig::default())
        .expect("hierarchical solve failed");
    let seconds = t0.elapsed().as_secs_f64();
    let stats = h.stats();
    eprintln!(
        "[hier] done in {} ({} parts, {} boundary vertices, {} cut edges)",
        fmt_duration(seconds),
        stats.parts,
        stats.boundary_vertices,
        stats.cut_edges
    );
    let csr = g.to_csr();
    let mut exact = true;
    for &s in sources {
        let oracle = dijkstra::sssp(&csr, s);
        let row = h.row(s).expect("row query failed");
        for (t, (&got, &expect)) in row.iter().zip(oracle.iter()).enumerate() {
            if got != expect && !(got.is_infinite() && expect.is_infinite()) {
                eprintln!("[hier] row {s}: d({s},{t}) = {got} vs Dijkstra {expect}");
                exact = false;
                break;
            }
        }
    }
    (
        HierLeg {
            parts: stats.parts,
            target_part_size: stats.target_part_size,
            boundary_vertices: stats.boundary_vertices,
            cut_edges: stats.cut_edges,
            seconds,
        },
        exact,
    )
}

fn planner_rule_for(g: &Graph) -> String {
    let sc = ctx();
    let plan = Problem::new(g).plan(&sc).expect("planning failed");
    if plan.solver == SolverId::SparseHierarchical {
        plan.notes()
            .iter()
            .find(|n| n.rule == "sparse-hierarchical")
            .map(|n| n.rule.to_string())
            .unwrap_or_else(|| "prefer".into())
    } else {
        format!("dense ({:?})", plan.solver)
    }
}

/// Extracts the raw scalar after `"key":` in a flat JSON document whose
/// keys are unique (the staged dense-timing file). Not a JSON parser —
/// just enough for the shim-only environment.
fn json_scalar(body: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":");
    let at = body.find(&pat)? + pat.len();
    let rest = body[at..].trim_start();
    let end = rest.find([',', '}', '\n']).unwrap_or(rest.len());
    Some(rest[..end].trim().to_string())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let dense_only = args.iter().any(|a| a == "--dense-only");

    let (rows, cols) = if quick { (48, 48) } else { (142, 142) };
    let g = generators::road_grid(rows, cols, SEED);
    let n = g.order();
    let sources = sample_sources(n);
    eprintln!(
        "road_grid({rows}, {cols}, {SEED}): n = {n}, edges = {}, density = {:.5}",
        g.num_edges(),
        g.density()
    );

    if dense_only {
        let dense = run_dense(&g, &sources);
        #[derive(Serialize)]
        struct Staged {
            n: usize,
            dense: DenseLeg,
        }
        let staged = Staged { n, dense };
        let body = serde_json::to_string_pretty(&staged).expect("serialize");
        std::fs::write(STAGED_DENSE, body).expect("stage dense timing");
        eprintln!("[dense] staged timing at {STAGED_DENSE}");
        return;
    }

    let (hier, hier_exact) = run_hier(&g, &sources);

    // Dense leg: reuse a staged full-size timing when present (it takes
    // ~an hour on one core); measure inline otherwise. The serde_json
    // shim is write-only, so the staged file is scanned for its scalar
    // fields directly (flat, known-unique keys).
    let dense = match std::fs::read_to_string(STAGED_DENSE) {
        Ok(body) if !quick => {
            let staged_n = json_scalar(&body, "n")
                .and_then(|s| s.parse::<usize>().ok())
                .unwrap_or(0);
            if staged_n == n {
                eprintln!("[dense] reusing staged timing from {STAGED_DENSE}");
                DenseLeg {
                    solver: "Blocked Collect/Broadcast (Algorithm 4)",
                    block_size: json_scalar(&body, "block_size")
                        .and_then(|s| s.parse().ok())
                        .unwrap_or(0),
                    seconds: json_scalar(&body, "seconds")
                        .and_then(|s| s.parse().ok())
                        .unwrap_or(f64::NAN),
                    sample_rows_bit_equal_dijkstra: json_scalar(
                        &body,
                        "sample_rows_bit_equal_dijkstra",
                    ) == Some("true".into()),
                }
            } else {
                run_dense(&g, &sources)
            }
        }
        _ => run_dense(&g, &sources),
    };

    let speedup = dense.seconds / hier.seconds;
    let mut t = TextTable::new(&["leg", "seconds", "notes"]);
    t.row(vec![
        "dense Blocked-CB".into(),
        fmt_duration(dense.seconds),
        format!("b = {}", dense.block_size),
    ]);
    t.row(vec![
        "hierarchical".into(),
        fmt_duration(hier.seconds),
        format!("{} parts, {} boundary", hier.parts, hier.boundary_vertices),
    ]);
    t.row(vec![
        "speedup".into(),
        format!("{speedup:.1}x"),
        format!(
            "bit-equal vs Dijkstra on {} rows: {hier_exact}",
            sources.len()
        ),
    ]);
    println!(
        "== dense vs hierarchical (road_grid {rows}x{cols}) ==\n{}",
        t.render()
    );

    assert!(
        hier_exact,
        "hierarchical distances must be bit-equal to Dijkstra"
    );
    if quick {
        // CI smoke: assert correctness, never rewrite the committed baseline.
        println!("quick mode: baseline not rewritten (speedup {speedup:.1}x at toy scale)");
        return;
    }

    let res = SparseBench {
        description: "Dense blocked solve vs hierarchical partition/stitch path on a \
                      road-network-like graph; hierarchical distances verified bit-equal \
                      to per-source Dijkstra on the sampled rows (dyadic weights make \
                      float sums order-independent)"
            .into(),
        graph: format!("road_grid({rows}, {cols}, seed {SEED})"),
        n,
        edges: g.num_edges(),
        density: g.density(),
        dense,
        hierarchical: hier,
        speedup,
        verified_sources: sources.len(),
        hierarchical_bit_equal_dijkstra: hier_exact,
        planner_rule: planner_rule_for(&g),
    };
    if let Ok(path) = write_json("BENCH_sparse", &res) {
        println!("wrote {}", path.display());
    }
}
