//! Table 3: weak scaling of the blocked Spark solvers and the MPI
//! baselines at `n/p = 256`, `p ∈ {64, 128, 256, 512, 1024}`.
//!
//! Projections come from the calibrated cluster model, with block sizes
//! chosen by the model-driven tuner (mirroring the paper's per-`p` tuning);
//! `--real` additionally runs a *real* thread-scaled weak-scaling sweep of
//! Blocked-CB and the MPI baselines on this machine.

use apsp_bench::{fmt_duration, paper, ratio, write_json, HarnessArgs, TextTable};
use apsp_cluster::{project, ClusterSpec, SolverKind, SparkOverheads, Workload};
use apsp_core::tuner::{paper_candidates, tune_with_model};
use apsp_core::{ApspSolver, BlockedCollectBroadcast, MpiDcApsp, MpiFw2d, SolverConfig};
use serde::Serialize;
use sparklet::{SparkConfig, SparkContext};

#[derive(Serialize)]
struct Table3Out {
    p: usize,
    n: usize,
    im_s: Option<f64>,
    im_b: Option<usize>,
    cb_s: f64,
    cb_b: usize,
    fw2d_mpi_s: f64,
    dc_mpi_s: f64,
}

fn main() {
    let args = HarnessArgs::parse();
    let rates = args.rates();
    let ov = SparkOverheads::default();

    println!("== Table 3: weak scaling, n/p = 256 ==\n");
    let mut table = TextTable::new(&[
        "p",
        "n",
        "Blocked-IM (b)",
        "Blocked-CB (b)",
        "FW-2D-GbE",
        "DC-GbE",
        "CB vs paper",
    ]);
    let mut out = Vec::new();
    for entry in paper::TABLE3 {
        let p = entry.p;
        let n = 256 * p;
        let spec = ClusterSpec::paper_cluster_with_cores(p);

        let im = tune_with_model(
            SolverKind::BlockedInMemory,
            n,
            &spec,
            &rates,
            &ov,
            &paper_candidates(),
        );
        let (cb_b, cb) = tune_with_model(
            SolverKind::BlockedCollectBroadcast,
            n,
            &spec,
            &rates,
            &ov,
            &paper_candidates(),
        )
        .expect("CB must be feasible");
        let w = Workload::paper_default(n, cb_b);
        let fw = project(SolverKind::MpiFw2d, &w, &spec, &rates, &ov);
        let dc = project(SolverKind::MpiDc, &w, &spec, &rates, &ov);

        let im_cell = match &im {
            Some((b, proj)) => format!("{} ({b})", fmt_duration(proj.total_s)),
            None => "— out of storage".into(),
        };
        // Paper agreement on IM feasibility.
        assert_eq!(
            im.is_some(),
            entry.im.is_some(),
            "p={p}: IM feasibility disagrees with the paper"
        );

        table.row(vec![
            p.to_string(),
            n.to_string(),
            im_cell,
            format!("{} ({cb_b})", fmt_duration(cb.total_s)),
            fmt_duration(fw.total_s),
            fmt_duration(dc.total_s),
            ratio(cb.total_s, entry.cb.0),
        ]);
        out.push(Table3Out {
            p,
            n,
            im_s: im.as_ref().map(|(_, pr)| pr.total_s),
            im_b: im.as_ref().map(|(b, _)| *b),
            cb_s: cb.total_s,
            cb_b,
            fw2d_mpi_s: fw.total_s,
            dc_mpi_s: dc.total_s,
        });
    }
    println!("{}", table.render());
    println!("paper rows: IM 4m2s/14m20s/35m33s/2h17m/—, CB 2m50s/11m/34m16s/2h11m/8h9m,");
    println!("            FW-2D-GbE 2m3s/—/37m2s/—/11h51m, DC-GbE 1m15s/—/18m54s/—/2h52m\n");

    if args.real {
        real_weak_scaling(&args);
    }

    if let Ok(path) = write_json("table3_weak_scaling", &out) {
        println!("wrote {}", path.display());
    }
}

/// Real weak scaling on host threads: n/core held constant.
fn real_weak_scaling(args: &HarnessArgs) {
    let per_core = if args.quick { 48 } else { 96 };
    let max_cores = std::thread::available_parallelism().map_or(4, |p| p.get());
    let cores: Vec<usize> = [1usize, 2, 4, 8]
        .into_iter()
        .filter(|&c| c <= max_cores)
        .collect();

    println!("-- real weak scaling on host threads (n = {per_core}·cores) --");
    let mut table = TextTable::new(&["cores", "n", "CB", "FW-2D-MPI (grid)", "DC-MPI"]);
    for &c in &cores {
        let n = per_core * c;
        let g = apsp_graph::generators::erdos_renyi_paper(n, 0.1, 0x7A81E3 + c as u64);
        let adj = g.to_dense();
        let oracle = apsp_graph::floyd_warshall(&g);

        let ctx = SparkContext::new(SparkConfig::with_cores(c));
        let cb = BlockedCollectBroadcast
            .solve(
                &ctx,
                &adj,
                &SolverConfig::new((n / 4).max(8)).without_validation(),
            )
            .expect("CB failed");
        assert!(cb.distances().approx_eq(&oracle, 1e-9).is_ok());

        let grid = (c as f64).sqrt().floor() as usize;
        let grid = grid.max(1);
        let t0 = std::time::Instant::now();
        let fw = MpiFw2d::new(grid).solve_matrix(&adj).expect("FW-2D failed");
        let fw_t = t0.elapsed().as_secs_f64();
        assert!(fw.distances.approx_eq(&oracle, 1e-9).is_ok());

        let t1 = std::time::Instant::now();
        let dc = MpiDcApsp::new(c).solve_matrix(&adj).expect("DC failed");
        let dc_t = t1.elapsed().as_secs_f64();
        assert!(dc.distances.approx_eq(&oracle, 1e-9).is_ok());

        table.row(vec![
            c.to_string(),
            n.to_string(),
            format!("{:.2}s", cb.elapsed.as_secs_f64()),
            format!("{fw_t:.2}s ({grid}x{grid})"),
            format!("{dc_t:.2}s"),
        ]);
    }
    println!("{}", table.render());
}
