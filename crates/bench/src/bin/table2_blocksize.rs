//! Table 2: the effect of block size on execution time for all four Spark
//! solvers × {MD, PH} × b ∈ {256 … 4096}, at `n = 262144, p = 1024, B = 2`.
//!
//! Regenerated with the calibrated cluster model (the paper's own
//! projection methodology), printed side-by-side with the paper's rows.

use apsp_bench::{fmt_duration, paper, ratio, write_json, HarnessArgs, TextTable};
use apsp_cluster::{project, ClusterSpec, PartitionerKind, SolverKind, SparkOverheads, Workload};
use serde::Serialize;

#[derive(Serialize)]
struct Table2Out {
    method: String,
    partitioner: String,
    b: usize,
    iterations: u64,
    single_s: f64,
    projected_s: f64,
    paper_single_s: f64,
    paper_projected_s: f64,
}

fn solver_kind(label: &str) -> SolverKind {
    match label {
        "Repeated Squaring" => SolverKind::RepeatedSquaring,
        "2D Floyd-Warshall" => SolverKind::FloydWarshall2D,
        "Blocked-IM" => SolverKind::BlockedInMemory,
        "Blocked-CB" => SolverKind::BlockedCollectBroadcast,
        other => panic!("unknown solver {other}"),
    }
}

fn main() {
    let args = HarnessArgs::parse();
    let spec = ClusterSpec::paper_cluster();
    let rates = args.rates();
    let ov = SparkOverheads::default();
    let n = 262_144;

    println!("== Table 2: block-size effect, n = {n}, p = 1024, B = 2 ==");
    println!("(model vs paper; 'Projected' is iterations × single-iteration time)\n");

    let mut out_rows = Vec::new();
    let mut table = TextTable::new(&[
        "Method",
        "Part.",
        "b",
        "Iters",
        "Single",
        "Projected",
        "Paper single",
        "Paper proj",
        "proj Δ",
    ]);
    for row in paper::TABLE2 {
        let kind = solver_kind(row.method);
        let partitioner = if row.partitioner == "MD" {
            PartitionerKind::MultiDiagonal
        } else {
            PartitionerKind::PortableHash
        };
        let w = Workload {
            n,
            b: row.b,
            partitions_per_core: 2,
            partitioner,
        };
        let p = project(kind, &w, &spec, &rates, &ov);
        assert_eq!(
            p.iterations, row.iterations,
            "{} b={} iteration-count mismatch",
            row.method, row.b
        );
        table.row(vec![
            row.method.into(),
            row.partitioner.into(),
            row.b.to_string(),
            p.iterations.to_string(),
            fmt_duration(p.single_iteration_s),
            fmt_duration(p.total_s),
            fmt_duration(row.single_s),
            fmt_duration(row.projected_s),
            ratio(p.total_s, row.projected_s),
        ]);
        out_rows.push(Table2Out {
            method: row.method.into(),
            partitioner: row.partitioner.into(),
            b: row.b,
            iterations: p.iterations,
            single_s: p.single_iteration_s,
            projected_s: p.total_s,
            paper_single_s: row.single_s,
            paper_projected_s: row.projected_s,
        });
    }
    println!("{}", table.render());

    // Shape assertions the paper's §5.3 narrative makes.
    let best = |kind: SolverKind, part: PartitionerKind| -> f64 {
        [256usize, 512, 1024, 2048, 4096]
            .iter()
            .map(|&b| {
                let w = Workload {
                    n,
                    b,
                    partitions_per_core: 2,
                    partitioner: part,
                };
                project(kind, &w, &spec, &rates, &ov).total_s
            })
            .fold(f64::INFINITY, f64::min)
    };
    let md = PartitionerKind::MultiDiagonal;
    let day = 86_400.0;
    let rs = best(SolverKind::RepeatedSquaring, md);
    let fw = best(SolverKind::FloydWarshall2D, md);
    let im = best(SolverKind::BlockedInMemory, md);
    let cb = best(SolverKind::BlockedCollectBroadcast, md);
    println!("shape checks:");
    println!(
        "  RS best {:>8}  (paper: days)        {}",
        fmt_duration(rs),
        ok(rs > 2.0 * day)
    );
    println!(
        "  FW2D best {:>7} (paper: ~50+ days)  {}",
        fmt_duration(fw),
        ok(fw > 30.0 * day)
    );
    println!(
        "  IM best {:>8}  (paper: ~8h)         {}",
        fmt_duration(im),
        ok(im < day)
    );
    println!(
        "  CB best {:>8}  (paper: ~7h)         {}",
        fmt_duration(cb),
        ok(cb < day)
    );
    println!("  CB ≤ IM: {}", ok(cb <= im));

    if let Ok(path) = write_json("table2_blocksize", &out_rows) {
        println!("\nwrote {}", path.display());
    }
}

fn ok(cond: bool) -> &'static str {
    if cond {
        "[ok]"
    } else {
        "[MISMATCH]"
    }
}
