//! §5.4 baseline: sequential Floyd-Warshall at `n = 256` (`T1`).
//!
//! The paper records `T1 = 0.022 s` (0.762 Gops) with SciPy + MKL on one
//! Skylake core; this harness measures the same quantity with the
//! `apsp-blockmat` kernel on this machine and prints both.

use apsp_bench::{fmt_duration, paper, write_json, TextTable};
use apsp_graph::{floyd_warshall, generators};
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct T1Result {
    n: usize,
    host_seconds: f64,
    host_gops: f64,
    paper_seconds: f64,
    paper_gops: f64,
}

fn main() {
    let n = 256;
    let g = generators::erdos_renyi_paper(n, 0.1, 0xA5);

    // Warm up, then take the best of 5 (the paper reports a single point;
    // best-of filters scheduler noise).
    let _ = floyd_warshall(&g);
    let mut best = f64::INFINITY;
    for _ in 0..5 {
        let t0 = Instant::now();
        let d = floyd_warshall(&g);
        let dt = t0.elapsed().as_secs_f64();
        best = best.min(dt);
        assert_eq!(d.order(), n);
    }
    let gops = (n as f64).powi(3) / best / 1e9;

    let mut t = TextTable::new(&["quantity", "this host", "paper (§5.4)"]);
    t.row(vec![
        "T1(n=256)".into(),
        fmt_duration(best),
        fmt_duration(paper::T1_N256_S),
    ]);
    t.row(vec![
        "Gops".into(),
        format!("{gops:.3}"),
        format!("{:.3}", paper::T1_GOPS),
    ]);
    println!("== T1 sequential baseline ==\n{}", t.render());

    let res = T1Result {
        n,
        host_seconds: best,
        host_gops: gops,
        paper_seconds: paper::T1_N256_S,
        paper_gops: paper::T1_GOPS,
    };
    if let Ok(path) = write_json("t1_sequential", &res) {
        println!("wrote {}", path.display());
    }
}
