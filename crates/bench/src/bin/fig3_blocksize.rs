//! Figure 3 (top/middle): Blocked In-Memory vs Collect/Broadcast total
//! time as a function of block size, partitioner, and over-decomposition
//! factor `B`, at the paper's `n = 131072, p = 1024`.
//!
//! Projections use the calibrated cluster model (the paper's own Table-2
//! methodology). Pass `--real` to also run a scaled-down sweep with real
//! execution on this machine (`n = 512`, the same U-shape drivers:
//! per-iteration overhead at small `b` vs granularity at large `b`).

use apsp_bench::{fmt_duration, write_json, HarnessArgs, TextTable};
use apsp_cluster::{project, ClusterSpec, PartitionerKind, SolverKind, SparkOverheads, Workload};
use apsp_core::{
    ApspSolver, BlockedCollectBroadcast, BlockedInMemory, PartitionerChoice, SolverConfig,
};
use serde::Serialize;
use sparklet::{SparkConfig, SparkContext};

#[derive(Serialize)]
struct Fig3Point {
    solver: String,
    partitioner: String,
    partitions_per_core: usize,
    b: usize,
    projected_s: Option<f64>,
    infeasible: bool,
}

fn main() {
    let args = HarnessArgs::parse();
    let spec = ClusterSpec::paper_cluster();
    let rates = args.rates();
    let ov = SparkOverheads::default();
    let n = 131_072;
    let sweep = [512usize, 768, 1024, 1280, 1536, 1792, 2048];

    println!("== Figure 3 (top/middle): IM & CB time vs block size, n = {n}, p = 1024 ==\n");
    let mut points = Vec::new();
    for (solver, kind) in [
        ("IM", SolverKind::BlockedInMemory),
        ("CB", SolverKind::BlockedCollectBroadcast),
    ] {
        for partitioner in [
            PartitionerKind::MultiDiagonal,
            PartitionerKind::PortableHash,
        ] {
            let mut table = TextTable::new(&["b", "B=1", "B=2"]);
            for &b in &sweep {
                let mut cells = vec![b.to_string()];
                for bfac in [1usize, 2] {
                    let w = Workload {
                        n,
                        b,
                        partitions_per_core: bfac,
                        partitioner,
                    };
                    let p = project(kind, &w, &spec, &rates, &ov);
                    let cell = if p.feasibility.is_feasible() {
                        fmt_duration(p.total_s)
                    } else {
                        "FAILS (local storage)".to_string()
                    };
                    points.push(Fig3Point {
                        solver: solver.into(),
                        partitioner: partitioner.label().into(),
                        partitions_per_core: bfac,
                        b,
                        projected_s: p.feasibility.is_feasible().then_some(p.total_s),
                        infeasible: !p.feasibility.is_feasible(),
                    });
                    cells.push(cell);
                }
                table.row(cells);
            }
            println!("{solver} / {}:", partitioner.label());
            println!("{}", table.render());
        }
    }
    println!("paper shape: IM fails for b < 1024; PH at B=1 is the worst configuration;");
    println!("both methods bottom out in the 1024–2048 range (compare the tables above).\n");

    if args.real {
        real_sweep(&args);
    }

    if let Ok(path) = write_json("fig3_blocksize", &points) {
        println!("wrote {}", path.display());
    }
}

/// Scaled-down real execution: same sweep structure on this machine.
fn real_sweep(args: &HarnessArgs) {
    let n = if args.quick { 256 } else { 512 };
    let cores = std::thread::available_parallelism().map_or(4, |p| p.get().min(8));
    let g = apsp_graph::generators::erdos_renyi_paper(n, 0.1, 0xF16);
    let adj = g.to_dense();
    let oracle = apsp_graph::floyd_warshall(&g);
    let sweep = [32usize, 64, 128, 256];

    println!("-- real scaled-down sweep: n = {n}, cores = {cores} --");
    let mut table = TextTable::new(&["b", "IM (MD)", "CB (MD)", "IM shuffle MB", "CB side-ch MB"]);
    for &b in &sweep {
        let ctx = SparkContext::new(SparkConfig::with_cores(cores));
        let im = BlockedInMemory
            .solve(&ctx, &adj, &SolverConfig::new(b).without_validation())
            .expect("IM failed");
        assert!(im.distances().approx_eq(&oracle, 1e-9).is_ok());

        let ctx2 = SparkContext::new(SparkConfig::with_cores(cores));
        let cb = BlockedCollectBroadcast
            .solve(
                &ctx2,
                &adj,
                &SolverConfig::new(b)
                    .with_partitioner(PartitionerChoice::MultiDiagonal)
                    .without_validation(),
            )
            .expect("CB failed");
        assert!(cb.distances().approx_eq(&oracle, 1e-9).is_ok());

        table.row(vec![
            b.to_string(),
            format!("{:.2}s", im.elapsed.as_secs_f64()),
            format!("{:.2}s", cb.elapsed.as_secs_f64()),
            format!("{:.1}", im.metrics.shuffle_bytes as f64 / 1e6),
            format!(
                "{:.1}",
                (cb.metrics.side_channel_bytes_written + cb.metrics.side_channel_bytes_read) as f64
                    / 1e6
            ),
        ]);
    }
    println!("{}", table.render());
}
