//! End-to-end solver microbenchmarks at miniature scale: the four Spark
//! solvers and the two MPI baselines on the same graph. Mirrors, at bench
//! granularity, the orderings the paper's Tables 2/3 report at scale.

use apsp_core::{
    ApspSolver, BlockedCollectBroadcast, BlockedInMemory, FloydWarshall2D, MpiDcApsp, MpiFw2d,
    RepeatedSquaring, SolverConfig,
};
use criterion::{criterion_group, criterion_main, Criterion};
use sparklet::{SparkConfig, SparkContext};

const N: usize = 96;
const B: usize = 24;

fn bench_spark_solvers(c: &mut Criterion) {
    let g = apsp_graph::generators::erdos_renyi_paper(N, 0.1, 42);
    let adj = g.to_dense();
    let mut group = c.benchmark_group("solvers");

    let cases: Vec<(&str, Box<dyn ApspSolver>)> = vec![
        ("repeated_squaring", Box::new(RepeatedSquaring)),
        ("fw2d", Box::new(FloydWarshall2D)),
        ("blocked_im", Box::new(BlockedInMemory)),
        ("blocked_cb", Box::new(BlockedCollectBroadcast)),
    ];
    for (name, solver) in cases {
        group.bench_function(name, |bench| {
            bench.iter(|| {
                let ctx = SparkContext::new(SparkConfig::with_cores(4));
                solver
                    .solve(&ctx, &adj, &SolverConfig::new(B).without_validation())
                    .expect("solve failed")
            });
        });
    }
    group.bench_function("mpi_fw2d_2x2", |bench| {
        bench.iter(|| MpiFw2d::new(2).solve_matrix(&adj).expect("solve failed"));
    });
    group.bench_function("mpi_dc_4ranks", |bench| {
        bench.iter(|| MpiDcApsp::new(4).solve_matrix(&adj).expect("solve failed"));
    });
    group.bench_function("sequential_oracle", |bench| {
        bench.iter(|| apsp_graph::floyd_warshall(&g));
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_spark_solvers
}
criterion_main!(benches);
