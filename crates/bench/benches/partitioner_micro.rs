//! Partitioner microbenchmarks: assignment throughput and the skew
//! computation used by the Fig. 3 (bottom) harness.

use apsp_cluster::{skew_factor, PartitionerKind};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sparklet::partitioner::{
    MultiDiagonalPartitioner, Partitioner, PortableHashPartitioner, StdHashPartitioner,
};

fn bench_assignment(c: &mut Criterion) {
    let q = 256usize;
    let parts = 2048usize;
    let keys: Vec<(usize, usize)> = (0..q).flat_map(|i| (i..q).map(move |j| (i, j))).collect();
    let mut group = c.benchmark_group("partitioner/assign_33k_keys");

    let md = MultiDiagonalPartitioner::new(q, parts);
    group.bench_function("multi_diagonal", |b| {
        b.iter(|| keys.iter().map(|k| md.partition(k)).sum::<usize>())
    });
    let ph = PortableHashPartitioner::<(usize, usize)>::new(parts);
    group.bench_function("portable_hash", |b| {
        b.iter(|| keys.iter().map(|k| ph.partition(k)).sum::<usize>())
    });
    let sh = StdHashPartitioner::<(usize, usize)>::new(parts);
    group.bench_function("std_hash", |b| {
        b.iter(|| keys.iter().map(|k| sh.partition(k)).sum::<usize>())
    });
    group.finish();
}

fn bench_skew_factor(c: &mut Criterion) {
    let mut group = c.benchmark_group("partitioner/skew_factor");
    for q in [128usize, 256] {
        group.bench_with_input(BenchmarkId::new("md", q), &q, |b, &q| {
            b.iter(|| skew_factor(PartitionerKind::MultiDiagonal, q, 2048))
        });
        group.bench_with_input(BenchmarkId::new("ph", q), &q, |b, &q| {
            b.iter(|| skew_factor(PartitionerKind::PortableHash, q, 2048))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_assignment, bench_skew_factor
}
criterion_main!(benches);
