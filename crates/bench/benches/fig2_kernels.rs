//! Criterion microbenchmarks behind Figure 2: the sequential kernels at
//! several block sizes, plus the kernel-variant ablation (naive vs tiled
//! vs rayon-parallel min-plus).

use apsp_blockmat::{kernels, Block};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn dense_block(b: usize, seed: usize) -> Block {
    Block::from_fn(b, |i, j| {
        if i == j {
            0.0
        } else {
            1.0 + ((i * 31 + j * 17 + seed) % 97) as f64
        }
    })
}

fn bench_floyd_warshall(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2/floyd_warshall");
    for b in [64usize, 128, 256] {
        group.throughput(Throughput::Elements((b * b * b) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(b), &b, |bench, &b| {
            let base = dense_block(b, 1);
            bench.iter(|| {
                let mut blk = base.clone();
                kernels::floyd_warshall_in_place(&mut blk);
                blk
            });
        });
    }
    group.finish();
}

fn bench_minplus_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2/minplus");
    for b in [64usize, 128, 256] {
        let a = dense_block(b, 2);
        let x = dense_block(b, 3);
        group.throughput(Throughput::Elements((b * b * b) as u64));
        group.bench_with_input(BenchmarkId::new("naive", b), &b, |bench, _| {
            bench.iter(|| {
                let mut out = Block::infinity(b);
                kernels::min_plus_into_naive(&a, &x, &mut out);
                out
            });
        });
        group.bench_with_input(BenchmarkId::new("tiled", b), &b, |bench, _| {
            bench.iter(|| {
                let mut out = Block::infinity(b);
                kernels::min_plus_into(&a, &x, &mut out);
                out
            });
        });
        group.bench_with_input(BenchmarkId::new("parallel", b), &b, |bench, _| {
            bench.iter(|| {
                let mut out = Block::infinity(b);
                kernels::min_plus_into_parallel(&a, &x, &mut out);
                out
            });
        });
    }
    group.finish();
}

fn bench_fw_update(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2/fw_update_outer");
    for b in [128usize, 512] {
        let base = dense_block(b, 4);
        let col_i: Vec<f64> = (0..b).map(|i| i as f64).collect();
        let col_j: Vec<f64> = (0..b).map(|j| (j * 2) as f64).collect();
        group.throughput(Throughput::Elements((b * b) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(b), &b, |bench, _| {
            bench.iter(|| {
                let mut blk = base.clone();
                kernels::fw_update_outer(&mut blk, &col_i, &col_j);
                blk
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_floyd_warshall, bench_minplus_variants, bench_fw_update
}
criterion_main!(benches);
