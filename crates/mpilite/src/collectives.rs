//! Collective operations built from point-to-point messages, so their
//! simulated cost follows from the communication tree shape.

use crate::comm::Comm;
use crate::Payload;

/// Tag space reserved for collectives (high bits set to avoid clashing
/// with user tags).
const COLL_TAG_BASE: u64 = 1 << 60;

impl Comm {
    /// Broadcast from `root` along a binomial tree: `⌈log₂ p⌉` rounds, so
    /// simulated latency grows with `log p` — the property the paper's
    /// FW-2D-GbE analysis leans on ("communication overheads, specifically
    /// latency, that grow with log(p)", §5.5).
    ///
    /// `bytes` is the payload-size estimate used for the β term.
    pub fn broadcast<T: Payload + Clone>(&self, root: usize, value: Option<T>, bytes: usize) -> T {
        assert!(root < self.size(), "root rank out of range");
        let p = self.size();
        if p == 1 {
            return value.expect("root must supply the broadcast value");
        }
        // Relative rank so any root works with the same tree.
        let vrank = (self.rank() + p - root) % p;
        let mut have: Option<T> = if vrank == 0 {
            Some(value.expect("root must supply the broadcast value"))
        } else {
            None
        };
        let rounds = usize::BITS - (p - 1).leading_zeros();
        for r in 0..rounds {
            let stride = 1usize << r;
            if vrank < stride {
                // Holders send to vrank + stride.
                let peer = vrank + stride;
                if peer < p {
                    let dest = (peer + root) % p;
                    let v = have.clone().expect("holder must have the value");
                    self.send_sized(dest, COLL_TAG_BASE + r as u64, v, bytes);
                }
            } else if vrank < 2 * stride {
                let src = ((vrank - stride) + root) % p;
                have = Some(self.recv::<T>(src, COLL_TAG_BASE + r as u64));
            }
        }
        have.expect("broadcast did not reach this rank")
    }

    /// Gathers every rank's contribution at `root` (others return `None`).
    pub fn gather<T: Payload>(&self, root: usize, value: T, bytes: usize) -> Option<Vec<T>> {
        let p = self.size();
        if self.rank() == root {
            let mut out: Vec<Option<T>> = (0..p).map(|_| None).collect();
            out[root] = Some(value);
            // Drain sources in rank order; out-of-order arrivals are
            // buffered by the mailbox.
            #[allow(clippy::needless_range_loop)] // src is a rank id, not just an index
            for src in 0..p {
                if src == root {
                    continue;
                }
                out[src] = Some(self.recv::<T>(src, COLL_TAG_BASE + 100));
            }
            Some(out.into_iter().map(|o| o.expect("gather hole")).collect())
        } else {
            self.send_sized(root, COLL_TAG_BASE + 100, value, bytes);
            None
        }
    }

    /// All-gather: every rank ends with all contributions, in rank order.
    /// Implemented as gather-to-0 + broadcast (two tree phases).
    pub fn all_gather<T: Payload + Clone>(&self, value: T, bytes: usize) -> Vec<T> {
        let gathered = self.gather(0, value, bytes);
        let total = bytes * self.size();
        self.broadcast(0, gathered, total)
    }

    /// Reduction to `root` with a commutative, associative operator
    /// (binomial tree, `⌈log₂ p⌉` rounds).
    pub fn reduce<T: Payload + Clone>(
        &self,
        root: usize,
        value: T,
        bytes: usize,
        op: impl Fn(T, T) -> T,
    ) -> Option<T> {
        let p = self.size();
        let vrank = (self.rank() + p - root) % p;
        let mut acc = value;
        let rounds = if p == 1 {
            0
        } else {
            usize::BITS - (p - 1).leading_zeros()
        };
        for r in 0..rounds {
            let stride = 1usize << r;
            if vrank.is_multiple_of(2 * stride) {
                let peer = vrank + stride;
                if peer < p {
                    let src = (peer + root) % p;
                    let other = self.recv::<T>(src, COLL_TAG_BASE + 200 + r as u64);
                    acc = op(acc, other);
                }
            } else if vrank % (2 * stride) == stride {
                let dest = ((vrank - stride) + root) % p;
                self.send_sized(dest, COLL_TAG_BASE + 200 + r as u64, acc.clone(), bytes);
                return None; // leaf done after sending up
            }
        }
        if vrank == 0 {
            Some(acc)
        } else {
            None
        }
    }

    /// All-reduce: reduce to 0 then broadcast the result.
    pub fn all_reduce<T: Payload + Clone>(&self, value: T, op: impl Fn(T, T) -> T) -> T {
        let bytes = std::mem::size_of::<T>();
        let reduced = self.reduce(0, value, bytes, op);
        self.broadcast(0, reduced, bytes)
    }

    /// Synchronization barrier (all-reduce of unit).
    pub fn barrier(&self) {
        let () = self.all_reduce((), |(), ()| ());
    }

    /// Scatter: `root` holds one value per rank; each rank receives its
    /// own. `bytes` is the per-element size estimate.
    pub fn scatter<T: Payload>(&self, root: usize, values: Option<Vec<T>>, bytes: usize) -> T {
        let p = self.size();
        if self.rank() == root {
            let mut values = values.expect("root must supply the scatter values");
            assert_eq!(values.len(), p, "scatter needs one value per rank");
            // Send in reverse so we can pop owned values without shifting.
            let mut mine: Option<T> = None;
            for dest in (0..p).rev() {
                let v = values.pop().expect("length checked");
                if dest == root {
                    mine = Some(v);
                } else {
                    self.send_sized(dest, COLL_TAG_BASE + 300, v, bytes);
                }
            }
            mine.expect("root keeps its own element")
        } else {
            self.recv::<T>(root, COLL_TAG_BASE + 300)
        }
    }

    /// All-to-all personalized exchange: rank `i` sends `values[j]` to
    /// rank `j` and receives a vector indexed by source rank.
    pub fn all_to_all<T: Payload>(&self, values: Vec<T>, bytes_each: usize) -> Vec<T> {
        let p = self.size();
        assert_eq!(values.len(), p, "all_to_all needs one value per rank");
        let me = self.rank();
        let mut out: Vec<Option<T>> = (0..p).map(|_| None).collect();
        for (dest, v) in values.into_iter().enumerate() {
            if dest == me {
                out[me] = Some(v);
            } else {
                self.send_sized(dest, COLL_TAG_BASE + 400, v, bytes_each);
            }
        }
        #[allow(clippy::needless_range_loop)] // src is a rank id, not just an index
        for src in 0..p {
            if src != me {
                out[src] = Some(self.recv::<T>(src, COLL_TAG_BASE + 400));
            }
        }
        out.into_iter().map(|o| o.expect("exchange hole")).collect()
    }
}

#[cfg(test)]
mod tests {
    use crate::{CommCost, World};

    #[test]
    fn broadcast_from_every_root() {
        for p in [1usize, 2, 3, 5, 8] {
            for root in 0..p {
                let out = World::new(p, CommCost::zero()).run(|c| {
                    let v = if c.rank() == root {
                        Some(root as u64 * 10)
                    } else {
                        None
                    };
                    c.broadcast(root, v, 8)
                });
                assert_eq!(out, vec![root as u64 * 10; p], "p={p} root={root}");
            }
        }
    }

    #[test]
    fn gather_collects_in_rank_order() {
        let out = World::new(5, CommCost::zero()).run(|c| c.gather(2, c.rank() as u64, 8));
        for (r, res) in out.iter().enumerate() {
            if r == 2 {
                assert_eq!(res.as_deref(), Some(&[0u64, 1, 2, 3, 4][..]));
            } else {
                assert!(res.is_none());
            }
        }
    }

    #[test]
    fn all_gather_everywhere() {
        let out = World::new(4, CommCost::gbe()).run(|c| c.all_gather((c.rank() as u64) * 2, 8));
        for res in out {
            assert_eq!(res, vec![0, 2, 4, 6]);
        }
    }

    #[test]
    fn reduce_and_allreduce() {
        let out = World::new(7, CommCost::zero()).run(|c| {
            let r = c.reduce(0, c.rank() as u64, 8, |a, b| a + b);
            let ar = c.all_reduce(c.rank() as u64, |a, b| a + b);
            (r, ar)
        });
        assert_eq!(out[0].0, Some(21));
        for (i, (r, ar)) in out.iter().enumerate() {
            assert_eq!(*ar, 21);
            if i != 0 {
                assert!(r.is_none());
            }
        }
    }

    #[test]
    fn allreduce_max() {
        let out = World::new(6, CommCost::zero())
            .run(|c| c.all_reduce(c.rank() as u64 * 7 % 5, |a, b| a.max(b)));
        for v in out {
            assert_eq!(v, 4);
        }
    }

    #[test]
    fn barrier_completes() {
        let out = World::new(8, CommCost::gbe()).run(|c| {
            c.barrier();
            c.elapsed()
        });
        for t in out {
            assert!(t > 0.0);
        }
    }

    #[test]
    fn broadcast_latency_grows_with_log_p() {
        // With beta = 0 and alpha = 1, the last rank to receive a
        // broadcast should see ~⌈log2 p⌉ seconds, not ~p seconds.
        let cost = CommCost {
            alpha: 1.0,
            beta: 0.0,
        };
        for p in [2usize, 4, 8, 16] {
            let out = World::new(p, cost).run(|c| {
                let v = if c.rank() == 0 { Some(1u8) } else { None };
                let _ = c.broadcast(0, v, 1);
                c.elapsed()
            });
            let max = out.iter().cloned().fold(0.0f64, f64::max);
            let logp = (p as f64).log2().ceil();
            assert!(
                max <= logp + 1e-9,
                "p={p}: broadcast critical path {max} exceeds log2(p)={logp}"
            );
            assert!(max >= logp - 1e-9, "p={p}: too fast ({max}) — tree broken?");
        }
    }

    #[test]
    fn scatter_delivers_per_rank_values() {
        for root in 0..4 {
            let out = World::new(4, CommCost::zero()).run(|c| {
                let values =
                    (c.rank() == root).then(|| (0..4).map(|i| i as u64 * 100).collect::<Vec<_>>());
                c.scatter(root, values, 8)
            });
            assert_eq!(out, vec![0, 100, 200, 300], "root={root}");
        }
    }

    #[test]
    fn all_to_all_transposes() {
        let p = 5;
        let out = World::new(p, CommCost::gbe()).run(|c| {
            // Rank i sends (i, j) to rank j.
            let values: Vec<(u64, u64)> = (0..p).map(|j| (c.rank() as u64, j as u64)).collect();
            c.all_to_all(values, 16)
        });
        for (j, received) in out.iter().enumerate() {
            for (i, &(src, dest)) in received.iter().enumerate() {
                assert_eq!(src, i as u64);
                assert_eq!(dest, j as u64);
            }
        }
    }

    #[test]
    fn reduce_handles_non_power_of_two() {
        for p in [3usize, 5, 6, 7, 9] {
            let out = World::new(p, CommCost::zero()).run(|c| c.all_reduce(1u64, |a, b| a + b));
            for v in out {
                assert_eq!(v, p as u64);
            }
        }
    }
}
