//! # mpilite — an MPI-like rank/message-passing substrate
//!
//! The paper benchmarks its Spark solvers against two MPI programs
//! (FW-2D-GbE and Solomonik's DC solver, §5.5). With no MPI runtime
//! available, this crate provides the substrate those baselines are
//! reimplemented on: SPMD ranks as OS threads, typed point-to-point
//! messaging, tree-based collectives, and — crucially — a **simulated
//! communication clock** per rank using the α–β (latency–bandwidth) model,
//! so that large-`p` communication behaviour (e.g. the `log p` broadcast
//! latency growth that sinks naive FW-2D) is *derived* from the message
//! pattern rather than asserted.
//!
//! Each rank owns a [`Comm`] handle. Operations advance its local clock:
//!
//! * `advance(t)` — models `t` seconds of local compute,
//! * `send` — charges `α + β·bytes` and stamps the message with its
//!   arrival time,
//! * `recv` — waits for the message, then sets the local clock to
//!   `max(local, arrival)` (causal propagation),
//! * collectives are built from sends/receives, so their simulated cost
//!   emerges from the tree shape.
//!
//! Real wall-clock execution is also parallel (one thread per rank), so
//! small-scale runs double as correctness tests.
//!
//! ## Example
//!
//! ```
//! use mpilite::{CommCost, World};
//!
//! let results = World::new(4, CommCost::gbe()).run(|comm| {
//!     // Everyone contributes rank+1; allreduce with +.
//!     comm.all_reduce(comm.rank() as u64 + 1, |a, b| a + b)
//! });
//! assert_eq!(results, vec![10, 10, 10, 10]);
//! ```

#![warn(missing_docs)]

mod collectives;
mod comm;
mod world;

pub use comm::{Comm, CommCost, CommStats};
pub use world::World;

/// Marker for message payloads. Blanket-implemented.
pub trait Payload: Send + 'static {}
impl<T: Send + 'static> Payload for T {}
