//! Per-rank communicator: point-to-point messaging and the simulated clock.

use crate::Payload;
use crossbeam::channel::{Receiver, Sender};
use std::any::Any;
use std::cell::{Cell, RefCell};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// α–β communication cost model: a message of `n` bytes costs
/// `alpha + beta * n` seconds on the wire.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CommCost {
    /// Per-message latency in seconds.
    pub alpha: f64,
    /// Inverse bandwidth in seconds per byte.
    pub beta: f64,
}

impl CommCost {
    /// Gigabit Ethernet, the paper's interconnect: ~50 µs latency,
    /// ~125 MB/s bandwidth.
    pub fn gbe() -> Self {
        CommCost {
            alpha: 50e-6,
            beta: 1.0 / 125.0e6,
        }
    }

    /// Free communication (pure-compute experiments).
    pub fn zero() -> Self {
        CommCost {
            alpha: 0.0,
            beta: 0.0,
        }
    }
}

pub(crate) struct Message {
    pub tag: u64,
    pub payload: Box<dyn Any + Send>,
    /// Simulated time at which the message reaches the receiver.
    pub arrival: f64,
}

/// Per-rank communication statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CommStats {
    /// Messages sent by this rank.
    pub messages_sent: u64,
    /// Payload bytes sent by this rank.
    pub bytes_sent: u64,
    /// Simulated elapsed seconds (compute + waiting + wire time).
    pub elapsed: f64,
}

type Mailbox = RefCell<HashMap<(usize, u64), VecDeque<Message>>>;

/// The full directed sender mesh: `senders[from][to]`.
pub(crate) type SenderMesh = Arc<Vec<Vec<Sender<(usize, Message)>>>>;

/// The per-rank communicator handle (the `MPI_Comm` analogue).
///
/// Owned by its rank's thread; not `Sync`. All operations advance the
/// rank's simulated clock per the [`CommCost`] model.
pub struct Comm {
    rank: usize,
    size: usize,
    cost: CommCost,
    senders: SenderMesh,
    receiver: Receiver<(usize, Message)>,
    /// Messages received but not yet consumed (out-of-order buffering).
    mailbox: Mailbox,
    clock: Cell<f64>,
    messages_sent: Cell<u64>,
    bytes_sent: Cell<u64>,
}

impl Comm {
    pub(crate) fn new(
        rank: usize,
        size: usize,
        cost: CommCost,
        senders: SenderMesh,
        receiver: Receiver<(usize, Message)>,
    ) -> Self {
        Comm {
            rank,
            size,
            cost,
            senders,
            receiver,
            mailbox: RefCell::new(HashMap::new()),
            clock: Cell::new(0.0),
            messages_sent: Cell::new(0),
            bytes_sent: Cell::new(0),
        }
    }

    /// This rank's id in `0..size()`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the world.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Simulated seconds elapsed at this rank.
    pub fn elapsed(&self) -> f64 {
        self.clock.get()
    }

    /// Models `seconds` of local computation.
    pub fn advance(&self, seconds: f64) {
        debug_assert!(seconds >= 0.0, "cannot advance time backwards");
        self.clock.set(self.clock.get() + seconds);
    }

    /// Communication statistics so far.
    pub fn stats(&self) -> CommStats {
        CommStats {
            messages_sent: self.messages_sent.get(),
            bytes_sent: self.bytes_sent.get(),
            elapsed: self.clock.get(),
        }
    }

    /// Sends `value` (with an explicit payload-size estimate in bytes) to
    /// rank `to` under `tag`. Non-blocking (buffered, like an eager-mode
    /// `MPI_Send`); charges `α + β·bytes` to the sender clock.
    pub fn send_sized<T: Payload>(&self, to: usize, tag: u64, value: T, bytes: usize) {
        assert!(to < self.size, "destination rank {to} out of range");
        assert_ne!(to, self.rank, "self-sends are not supported; use locals");
        let wire = self.cost.alpha + self.cost.beta * bytes as f64;
        let departure = self.clock.get();
        self.clock.set(departure + wire);
        self.messages_sent.set(self.messages_sent.get() + 1);
        self.bytes_sent.set(self.bytes_sent.get() + bytes as u64);
        let msg = Message {
            tag,
            payload: Box::new(value),
            arrival: departure + wire,
        };
        self.senders[self.rank][to]
            .send((self.rank, msg))
            .expect("peer rank hung up");
    }

    /// Sends with `size_of::<T>()` as the byte estimate.
    pub fn send<T: Payload>(&self, to: usize, tag: u64, value: T) {
        let bytes = std::mem::size_of::<T>();
        self.send_sized(to, tag, value, bytes);
    }

    /// Sends a `Vec<f64>` charging its true payload size (the common case
    /// in the APSP baselines: matrix panels).
    pub fn send_vec(&self, to: usize, tag: u64, value: Vec<f64>) {
        let bytes = value.len() * 8;
        self.send_sized(to, tag, value, bytes);
    }

    /// Receives the next message from `from` under `tag`, blocking until
    /// it arrives; advances the clock to the message's simulated arrival.
    ///
    /// # Panics
    /// Panics if the payload type does not match `T` (a protocol bug).
    pub fn recv<T: Payload>(&self, from: usize, tag: u64) -> T {
        assert!(from < self.size, "source rank {from} out of range");
        // Serve from the out-of-order buffer first.
        if let Some(queue) = self.mailbox.borrow_mut().get_mut(&(from, tag)) {
            if let Some(msg) = queue.pop_front() {
                return self.consume(msg);
            }
        }
        loop {
            let (src, msg) = self
                .receiver
                .recv()
                .expect("world shut down while receiving");
            if src == from && msg.tag == tag {
                return self.consume(msg);
            }
            self.mailbox
                .borrow_mut()
                .entry((src, msg.tag))
                .or_default()
                .push_back(msg);
        }
    }

    fn consume<T: Payload>(&self, msg: Message) -> T {
        // Causal clock propagation: cannot have consumed it before both
        // (a) it arrived, and (b) we got here locally.
        let now = self.clock.get().max(msg.arrival);
        self.clock.set(now);
        *msg.payload
            .downcast::<T>()
            .expect("message payload type mismatch (protocol bug)")
    }
}

#[cfg(test)]
mod tests {
    use crate::{CommCost, World};

    #[test]
    fn ping_pong() {
        let out = World::new(2, CommCost::zero()).run(|c| {
            if c.rank() == 0 {
                c.send(1, 0, 41u64);
                c.recv::<u64>(1, 1)
            } else {
                let x = c.recv::<u64>(0, 0);
                c.send(0, 1, x + 1);
                x
            }
        });
        assert_eq!(out, vec![42, 41]);
    }

    #[test]
    fn out_of_order_tags_buffered() {
        let out = World::new(2, CommCost::zero()).run(|c| {
            if c.rank() == 0 {
                c.send(1, 7, 70u64);
                c.send(1, 8, 80u64);
                0
            } else {
                // Receive in the reverse order of sending.
                let b = c.recv::<u64>(0, 8);
                let a = c.recv::<u64>(0, 7);
                a * 1000 + b
            }
        });
        assert_eq!(out[1], 70080);
    }

    #[test]
    fn clock_advances_with_alpha_beta() {
        let cost = CommCost {
            alpha: 1.0,
            beta: 0.5,
        };
        let out = World::new(2, cost).run(|c| {
            if c.rank() == 0 {
                c.send_sized(1, 0, 0u8, 10); // 1 + 5 seconds wire
                c.elapsed()
            } else {
                let _ = c.recv::<u8>(0, 0);
                c.elapsed()
            }
        });
        assert!((out[0] - 6.0).abs() < 1e-12);
        assert!((out[1] - 6.0).abs() < 1e-12, "receiver clock {}", out[1]);
    }

    #[test]
    fn receiver_clock_is_max_of_local_and_arrival() {
        let cost = CommCost {
            alpha: 1.0,
            beta: 0.0,
        };
        let out = World::new(2, cost).run(|c| {
            if c.rank() == 0 {
                c.send(1, 0, ());
                0.0
            } else {
                c.advance(100.0); // receiver is busy long past arrival
                let () = c.recv(0, 0);
                c.elapsed()
            }
        });
        assert!((out[1] - 100.0).abs() < 1e-12);
    }

    #[test]
    fn stats_count_messages_and_bytes() {
        let out = World::new(2, CommCost::gbe()).run(|c| {
            if c.rank() == 0 {
                c.send_vec(1, 0, vec![0.0; 100]);
                c.send_vec(1, 1, vec![0.0; 50]);
                c.stats()
            } else {
                let _: Vec<f64> = c.recv(0, 0);
                let _: Vec<f64> = c.recv(0, 1);
                c.stats()
            }
        });
        assert_eq!(out[0].messages_sent, 2);
        assert_eq!(out[0].bytes_sent, 1200);
        assert_eq!(out[1].messages_sent, 0);
        assert!(out[1].elapsed > 0.0);
    }

    #[test]
    #[should_panic(expected = "type mismatch")]
    fn type_mismatch_panics() {
        World::new(2, CommCost::zero()).run(|c| {
            if c.rank() == 0 {
                c.send(1, 0, 1u64);
            } else {
                let _: f32 = c.recv(0, 0);
            }
        });
    }
}
