//! SPMD world: spawns ranks and wires the communication mesh.

use crate::comm::{Comm, CommCost, Message};
use crossbeam::channel::unbounded;
use std::sync::Arc;

/// A world of `p` SPMD ranks with a shared cost model (the
/// `MPI_COMM_WORLD` analogue).
pub struct World {
    size: usize,
    cost: CommCost,
}

impl World {
    /// Creates a world of `size` ranks with communication costs `cost`.
    pub fn new(size: usize, cost: CommCost) -> Self {
        assert!(size > 0, "world needs at least one rank");
        World { size, cost }
    }

    /// Runs `f` on every rank concurrently (one OS thread per rank) and
    /// returns the per-rank results in rank order.
    ///
    /// Panics in any rank are propagated to the caller after all ranks are
    /// joined (so no rank is left dangling on a dead channel).
    pub fn run<T, F>(&self, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&Comm) -> T + Sync,
    {
        let p = self.size;
        // senders[from][to]: a dedicated channel pair per directed edge
        // would be p² channels; a single MPSC inbox per rank suffices
        // because messages carry their source. We still index by
        // [from][to] so a future per-edge backpressure model can slot in.
        let mut inboxes = Vec::with_capacity(p);
        let mut senders: Vec<Vec<crossbeam::channel::Sender<(usize, Message)>>> =
            (0..p).map(|_| Vec::with_capacity(p)).collect();
        for _to in 0..p {
            let (tx, rx) = unbounded();
            inboxes.push(rx);
            for from_senders in senders.iter_mut() {
                from_senders.push(tx.clone());
            }
        }
        let senders = Arc::new(senders);

        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(p);
            for (rank, inbox) in inboxes.into_iter().enumerate() {
                let senders = senders.clone();
                let cost = self.cost;
                let f = &f;
                handles.push(scope.spawn(move || {
                    let comm = Comm::new(rank, p, cost, senders, inbox);
                    f(&comm)
                }));
            }
            let mut results = Vec::with_capacity(p);
            let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
            for h in handles {
                match h.join() {
                    Ok(v) => results.push(v),
                    Err(e) => panic = Some(e),
                }
            }
            if let Some(e) = panic {
                std::panic::resume_unwind(e);
            }
            results
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rank_world() {
        let out = World::new(1, CommCost::zero()).run(|c| c.rank() + c.size());
        assert_eq!(out, vec![1]);
    }

    #[test]
    fn results_in_rank_order() {
        let out = World::new(8, CommCost::zero()).run(|c| c.rank());
        assert_eq!(out, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn ranks_share_environment_borrow() {
        let base = 100usize;
        let out = World::new(3, CommCost::zero()).run(|c| base + c.rank());
        assert_eq!(out, vec![100, 101, 102]);
    }
}
