//! Crate-isolation smoke tests for `cargo test -p mpilite`: point-to-point
//! and collective basics over a real multi-threaded world.

use mpilite::{CommCost, World};

#[test]
fn all_reduce_sums_ranks() {
    let out =
        World::new(4, CommCost::zero()).run(|c| c.all_reduce(c.rank() as u64 + 1, |a, b| a + b));
    assert_eq!(out, vec![10, 10, 10, 10]);
}

#[test]
fn broadcast_reaches_every_rank() {
    let out = World::new(5, CommCost::gbe()).run(|c| {
        let v = if c.rank() == 2 { Some(99u64) } else { None };
        c.broadcast(2, v, 8)
    });
    assert_eq!(out, vec![99; 5]);
}

#[test]
fn simulated_clock_charges_alpha_beta() {
    let cost = CommCost {
        alpha: 1.0,
        beta: 0.5,
    };
    let out = World::new(2, cost).run(|c| {
        if c.rank() == 0 {
            c.send_sized(1, 0, 0u8, 10);
        } else {
            let _: u8 = c.recv(0, 0);
        }
        c.elapsed()
    });
    // 1s latency + 5s wire time, propagated causally to the receiver.
    assert!((out[1] - 6.0).abs() < 1e-12, "receiver clock {}", out[1]);
}
